//! Interval management: ends, write-notice records, and diff production.
//!
//! An interval on node P ends when (i) P performs a remote acquire, (ii) P
//! produces a grant for a remote lock request, or (iii) P enters a barrier
//! (paper Section 2.1). Ending an interval turns the dirty-page set into a
//! write-notice record and resolves every twin into a diff: stored locally
//! (homeless), flushed to the page's home (home-based), or posted to the
//! co-processor (overlapped variants).

use std::rc::Rc;

use svm_machine::{Category, NodeId, ProcKind};
use svm_mem::{Access, Diff, PageNum};

use crate::msg::{IntervalRec, SvmMsg};
use crate::vt::VectorTime;

use super::state::StoredDiff;
use super::{MCtx, SvmAgent};

impl SvmAgent {
    /// Close `n`'s current interval (no-op when nothing was written).
    pub(crate) fn end_interval(&mut self, ctx: &mut MCtx<'_>, n: NodeId) {
        let idx = n.index();
        if self.nodes_st[idx].dirty.is_empty() {
            return;
        }
        let interval = self.nodes_st[idx].vt.bump(n);
        self.counters[idx].intervals += 1;
        let dirty = std::mem::take(&mut self.nodes_st[idx].dirty);
        let rec_vt = if self.homeless() {
            self.nodes_st[idx].vt.clone()
        } else {
            VectorTime::zero(0) // home-based write notices carry no vector
        };
        let rec = Rc::new(IntervalRec {
            writer: n,
            interval,
            vt: rec_vt.clone(),
            pages: dirty.clone(),
        });
        if self.cfg.trace.debug_log {
            eprintln!(
                "T end_interval {n:?} i{interval} vt={:?} pages={:?}",
                self.nodes_st[idx].vt, rec.pages
            );
        }
        if !self.bug_drop_write_notices() {
            self.counters[idx].mem.notices(rec.bytes() as i64);
            self.nodes_st[idx].log.insert((n.0, interval), rec);
        }
        if self.recording() {
            let vt = self.nodes_st[idx].vt.clone();
            let at = ctx.now();
            let pages: Vec<u32> = dirty.iter().map(|p| p.0).collect();
            self.with_recorder(n, |r| r.interval_end(interval, vt, at, pages));
        }

        let overlapped = self.overlapped();
        let homeless = self.homeless();
        let auto_update = self.cfg.protocol.auto_update();
        let ps = self.page_size();
        let mut task_items: Vec<(PageNum, Diff)> = Vec::new();
        // One shared clock for every diff this interval stores: the store
        // and the packets built from it alias it instead of cloning.
        let stored_vt = Rc::new(rec_vt.clone());

        for p in dirty {
            // Write-protect the page so the next write re-twins, and
            // downgrade the application's cached mapping to match.
            let protect = ctx.cost().page_protect;
            ctx.work(protect, Category::Protocol);
            self.downgrade_mapping(n, p);
            let st = &mut self.nodes_st[idx].pages[p.0 as usize];
            debug_assert_eq!(st.access, Access::ReadWrite, "dirty page must be writable");
            st.access = Access::ReadOnly;
            st.applied.raise(n, interval);
            st.seen.raise(n, interval);

            let is_home = !homeless && self.dir[p.0 as usize].home == Some(n);
            if is_home {
                // The home's copy is the master: its writes are already "in
                // place"; no twin was taken, no diff is needed (paper
                // Section 4.4, the home effect).
                debug_assert!(self.nodes_st[idx].pages[p.0 as usize].twin.is_none());
                continue;
            }

            let twin = self.nodes_st[idx].pages[p.0 as usize]
                .twin
                .take()
                // INVARIANT: a page enters the dirty list only via make_writable, which
                // installs the twin.
                .expect("dirty non-home page must have a twin");
            if !auto_update {
                self.counters[idx].mem.twins(-(ps as i64));
            }

            if overlapped {
                // Freeze the diff content now (the page may be rewritten or
                // receive foreign diffs before the co-processor runs); the
                // computation time is charged when the task executes.
                let diff = {
                    let st = &self.nodes_st[idx].pages[p.0 as usize];
                    // SAFETY: kernel phase; application threads are parked.
                    // INVARIANT: dirty pages were write-faulted, which installs a copy.
                    let cur = unsafe { st.buf.as_ref().expect("dirty page has a copy").bytes() };
                    Diff::create(&twin, cur)
                };
                svm_mem::pool::put_bytes(twin);
                self.nodes_st[idx].pending_diffs.insert((p.0, interval));
                task_items.push((p, diff));
                continue;
            }

            // Non-overlapped: the compute processor diffs right here — for
            // free under AURC, where the snooping hardware already
            // propagated the writes (the "diff" below only reconstructs
            // what the hardware sent; see the module docs).
            if !auto_update {
                let create = ctx.cost().diff_create(ps);
                ctx.work(create, Category::Protocol);
            }
            let diff = {
                let st = &self.nodes_st[idx].pages[p.0 as usize];
                // SAFETY: kernel phase; application threads are parked.
                // INVARIANT: dirty pages were write-faulted, which installs a copy.
                let cur = unsafe { st.buf.as_ref().expect("dirty page has a copy").bytes() };
                Rc::new(Diff::create(&twin, cur))
            };
            svm_mem::pool::put_bytes(twin);
            self.finish_diff(ctx, n, p, interval, &stored_vt, diff, ProcKind::Cpu);
        }

        if !task_items.is_empty() {
            let post = ctx.cost().coproc_post;
            ctx.work(post, Category::Protocol);
            // Intra-node posts ride the shared-memory post page; they are
            // never subject to network faults, so no sequencing envelope.
            ctx.post_local(
                ProcKind::CoProc,
                crate::protocol::reliable::Wire::Plain(SvmMsg::DiffTask {
                    interval,
                    vt: rec_vt,
                    items: task_items,
                }),
            );
        }
    }

    /// Account a freshly created diff and route it (store or flush home).
    #[allow(clippy::too_many_arguments)] // diff identity is naturally wide
    fn finish_diff(
        &mut self,
        ctx: &mut MCtx<'_>,
        n: NodeId,
        page: PageNum,
        interval: u32,
        vt: &Rc<VectorTime>,
        diff: Rc<Diff>,
        _on: ProcKind,
    ) {
        let idx = n.index();
        self.counters[idx].diffs_created += 1;
        self.counters[idx].diff_bytes_created += diff.payload_bytes() as u64;
        if self.homeless() {
            let bytes = (diff.heap_bytes() + vt.bytes()) as i64;
            self.counters[idx].mem.diffs(bytes);
            self.nodes_st[idx]
                .diff_store
                .entry(page.0)
                .or_default()
                .push(StoredDiff {
                    interval,
                    vt: Rc::clone(vt),
                    diff,
                });
        } else {
            let home = self.dir[page.0 as usize]
                .home
                // INVARIANT: the write fault that dirtied this page resolved its home
                // first.
                .expect("home resolved for dirty page");
            debug_assert_ne!(home, n, "home pages produce no diffs");
            // HLRC flushes to the home's compute processor; OHLRC to its
            // co-processor (which also applies it there); AURC's hardware
            // delivers into the home's network interface (modeled as the
            // co-processor) with write-through amplification: one burst per
            // run plus ~40% re-write traffic (Section 2.2's bandwidth
            // cost).
            let to = if self.cfg.protocol.auto_update() {
                svm_machine::ProcAddr::coproc(home)
            } else {
                self.data_proc(home)
            };
            if self.cfg.protocol.auto_update() && home != n {
                let extra_msgs = (diff.run_count() as u64).saturating_sub(1);
                let extra_bytes = diff.payload_bytes() * 2 / 5;
                ctx.record_traffic(
                    n,
                    svm_machine::TrafficClass::Data,
                    extra_msgs.max(1),
                    extra_bytes,
                );
            }
            let msg = SvmMsg::DiffFlush {
                page,
                writer: n,
                interval,
                diff: match Rc::try_unwrap(diff) {
                    Ok(d) => d,
                    Err(rc) => (*rc).clone(),
                },
            };
            self.send_or_local(ctx, to, msg);
        }
    }

    /// Co-processor execution of a posted diff task (overlapped variants):
    /// charge the diff-scan time, then store or flush the frozen diff.
    pub(crate) fn on_diff_task(
        &mut self,
        ctx: &mut MCtx<'_>,
        n: NodeId,
        interval: u32,
        vt: VectorTime,
        items: Vec<(PageNum, Diff)>,
    ) {
        let idx = n.index();
        let ps = self.page_size();
        let vt = Rc::new(vt);
        for (p, diff) in items {
            let create = ctx.cost().diff_create(ps);
            ctx.work(create, Category::Protocol);
            self.nodes_st[idx].pending_diffs.remove(&(p.0, interval));
            self.finish_diff(ctx, n, p, interval, &vt, Rc::new(diff), ProcKind::CoProc);
            self.serve_parked_diff_requests(ctx, n, p);
        }
    }

    /// Apply a batch of write-notice records at `n` (acquire or barrier
    /// departure): learn intervals, invalidate stale copies.
    pub(crate) fn process_records(
        &mut self,
        ctx: &mut MCtx<'_>,
        n: NodeId,
        records: &[Rc<IntervalRec>],
    ) {
        let idx = n.index();
        let homeless = self.homeless();
        let debug_log = self.cfg.trace.debug_log;
        let mut invalidated = 0usize;
        for rec in records {
            if rec.writer == n {
                continue;
            }
            let key = (rec.writer.0, rec.interval);
            if !self.nodes_st[idx].log.contains_key(&key) {
                self.counters[idx].mem.notices(rec.bytes() as i64);
                self.nodes_st[idx].log.insert(key, rec.clone());
            }
            let is_home_based = !homeless;
            for &p in &rec.pages {
                let home = self.dir[p.0 as usize].home;
                let st = &mut self.nodes_st[idx].pages[p.0 as usize];
                if debug_log {
                    eprintln!(
                        "T proc_rec at {n:?}: writer {:?} i{} page {:?} applied={}",
                        rec.writer,
                        rec.interval,
                        p,
                        st.applied.get(rec.writer)
                    );
                }
                st.seen.raise(rec.writer, rec.interval);
                if rec.interval <= st.applied.get(rec.writer) {
                    continue; // already reflected in our copy
                }
                debug_assert!(st.twin.is_none(), "live twin at record processing");
                if is_home_based && home == Some(n) {
                    // The home never discards its copy; it just waits for
                    // the in-flight diff (paper Section 2.4.2).
                    st.home_stale = true;
                }
                if st.access != Access::Invalid {
                    st.access = Access::Invalid;
                    invalidated += 1;
                    self.drop_mapping(n, p);
                }
            }
        }
        if invalidated > 0 {
            let cost = ctx.cost().invalidate(invalidated);
            ctx.work(cost, Category::Protocol);
        }
    }

    /// Select records from `n`'s log that `peer_vt` has not seen.
    pub(crate) fn records_for(&self, n: NodeId, peer_vt: &VectorTime) -> Vec<Rc<IntervalRec>> {
        self.nodes_st[n.index()]
            .log
            .values()
            .filter(|r| r.interval > peer_vt.get(r.writer))
            .cloned()
            .collect()
    }
}
