//! Per-node and per-page protocol state.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use svm_machine::NodeId;
use svm_mem::{Access, Diff, PageBuf, PageNum};

use crate::msg::{DiffPacket, IntervalRec};
use crate::vt::VectorTime;

/// A small per-writer map (pages rarely have more than a few writers).
#[derive(Clone, Default, Debug)]
pub struct WriterMap(Vec<(u16, u32)>);

impl WriterMap {
    /// The recorded interval for `w` (0 if absent).
    pub fn get(&self, w: NodeId) -> u32 {
        self.0
            .iter()
            .find(|(n, _)| *n == w.0)
            .map_or(0, |(_, i)| *i)
    }

    /// Raise `w`'s entry to at least `i`.
    pub fn raise(&mut self, w: NodeId, i: u32) {
        for e in &mut self.0 {
            if e.0 == w.0 {
                e.1 = e.1.max(i);
                return;
            }
        }
        self.0.push((w.0, i));
    }

    /// Iterate `(writer, interval)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.0.iter().map(|&(n, i)| (NodeId(n), i))
    }

    /// Export as a plain vector (for messages).
    pub fn to_vec(&self) -> Vec<(NodeId, u32)> {
        self.iter().collect()
    }

    /// Replace entries from `src`, keeping the maximum per writer.
    pub fn merge_max(&mut self, src: &[(NodeId, u32)]) {
        for &(w, i) in src {
            self.raise(w, i);
        }
    }

    /// Whether every entry of `need` is covered.
    pub fn covers(&self, need: &[(NodeId, u32)]) -> bool {
        need.iter().all(|&(w, i)| self.get(w) >= i)
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

/// One node's view of one shared page.
#[derive(Debug)]
pub struct PageState {
    /// Current access rights (drives faulting).
    pub access: Access,
    /// The local copy, materialized lazily.
    pub buf: Option<PageBuf>,
    /// Twin taken at the first write of the current interval (absent at an
    /// HLRC home, and while owned by a posted co-processor diff task).
    pub twin: Option<Vec<u8>>,
    /// Highest interval per writer this node has a write notice for.
    pub seen: WriterMap,
    /// Highest interval per writer reflected in `buf`.
    pub applied: WriterMap,
    /// HLRC home only: a notice arrived whose diff has not yet been
    /// applied; local reads must stall until it lands (paper Section 2.4.2).
    pub home_stale: bool,
    /// HLRC home only: fetches waiting for in-flight diffs, as
    /// `(requester, need)`.
    pub waiting_fetches: Vec<(NodeId, Vec<(NodeId, u32)>)>,
    /// HLRC home only: the local application is stalled on `home_stale`.
    pub local_waiter: bool,
}

impl PageState {
    /// A page this node has never touched.
    pub fn cold() -> Self {
        PageState {
            access: Access::Invalid,
            buf: None,
            twin: None,
            seen: WriterMap::default(),
            applied: WriterMap::default(),
            home_stale: false,
            waiting_fetches: Vec::new(),
            local_waiter: false,
        }
    }
}

/// A diff kept in a homeless node's store until garbage collection.
#[derive(Debug)]
pub struct StoredDiff {
    /// The interval that produced it.
    pub interval: u32,
    /// Its vector time (for causal ordering at appliers). Shared: every
    /// page dirtied by the same interval stores the same clock, and the
    /// packets built from the store alias it rather than cloning.
    pub vt: Rc<VectorTime>,
    /// The updates.
    pub diff: Rc<Diff>,
}

/// Where a node stands with a lock's token.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TokenState {
    /// The token is elsewhere.
    #[default]
    Absent,
    /// The token is cached here, lock free: re-acquire is local.
    HeldFree,
    /// This node is in the critical section.
    InCs,
}

/// Progress of one node's outstanding page fault.
#[derive(Debug)]
pub enum FaultStage {
    /// Waiting for the home's page (home-based).
    AwaitHome,
    /// Waiting for a full page from a copyset member (homeless cold miss).
    AwaitPage,
    /// Waiting for `outstanding` diff replies (homeless).
    AwaitDiffs {
        /// Replies not yet received.
        outstanding: u32,
        /// Diffs received so far.
        stash: Vec<DiffPacket>,
    },
    /// Waiting for an in-flight diff at our own home page.
    AwaitHomeDiffs,
}

/// An outstanding application page fault.
#[derive(Debug)]
pub struct FaultProgress {
    /// The faulting page.
    pub page: PageNum,
    /// Whether write access was requested.
    pub write: bool,
    /// Where the fetch stands.
    pub stage: FaultStage,
}

/// Per-lock state at its manager.
#[derive(Debug)]
pub struct LockManagerState {
    /// The last node to request the lock (tail of the distributed chain).
    pub tail: NodeId,
}

/// Per-lock state at a node.
#[derive(Debug, Default)]
pub struct LockNodeState {
    /// Token presence.
    pub token: TokenState,
    /// Forwarded requests waiting for our release, `(requester, vt)`.
    pub waiters: VecDeque<(NodeId, VectorTime)>,
    /// Forwards that arrived before our own grant did.
    pub early_forwards: Vec<(NodeId, VectorTime)>,
    /// The application is blocked acquiring this lock.
    pub local_pending: bool,
}

/// One node's protocol state.
pub struct ProtoNode {
    /// Vector time; `vt[self]` is the last closed interval's index.
    pub vt: VectorTime,
    /// Pages dirtied in the open interval.
    pub dirty: Vec<PageNum>,
    /// Per-page state, dense over the address space.
    pub pages: Vec<PageState>,
    /// Write-notice log for forwarding, keyed by `(writer, interval)`;
    /// truncated at barriers.
    pub log: BTreeMap<(u16, u32), Rc<IntervalRec>>,
    /// Homeless diff store: page -> diffs by ascending interval.
    pub diff_store: BTreeMap<u32, Vec<StoredDiff>>,
    /// Lock state by lock id.
    pub locks: BTreeMap<u32, LockNodeState>,
    /// Outstanding page fault, if any (applications are synchronous).
    pub fault: Option<FaultProgress>,
    /// The merged vector time of the last barrier (log-truncation point and
    /// "what the manager knows" baseline).
    pub last_barrier_vt: VectorTime,
    /// Homeless: diff requests that arrived before the diffs existed
    /// (overlapped runs), re-checked when diff tasks complete:
    /// `(page, requester, writer, from_excl, to_incl)`.
    pub parked_diff_requests: Vec<(PageNum, NodeId, NodeId, u32, u32)>,
    /// Overlapped: `(page, interval)` diffs posted to the co-processor but
    /// not yet computed (guards the diff store against early requests).
    pub pending_diffs: BTreeSet<(u32, u32)>,
}

impl ProtoNode {
    /// Fresh state for a machine of `nodes` nodes and `num_pages` pages.
    pub fn new(nodes: usize, num_pages: u32) -> Self {
        ProtoNode {
            vt: VectorTime::zero(nodes),
            dirty: Vec::new(),
            pages: (0..num_pages).map(|_| PageState::cold()).collect(),
            log: BTreeMap::new(),
            diff_store: BTreeMap::new(),
            locks: BTreeMap::new(),
            fault: None,
            last_barrier_vt: VectorTime::zero(nodes),
            parked_diff_requests: Vec::new(),
            pending_diffs: BTreeSet::new(),
        }
    }

    /// This node's state for `page`.
    pub fn page(&mut self, page: PageNum) -> &mut PageState {
        &mut self.pages[page.0 as usize]
    }

    /// Lock state, created on first use.
    pub fn lock(&mut self, lock: u32) -> &mut LockNodeState {
        self.locks.entry(lock).or_default()
    }
}

/// Global page directory entry.
#[derive(Clone, Debug)]
pub struct DirEntry {
    /// The page's home (resolved lazily under first-touch).
    pub home: Option<NodeId>,
    /// Cold-fetch target for the homeless protocols (initial owner, updated
    /// by garbage collection).
    pub validator: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_map_semantics() {
        let mut m = WriterMap::default();
        assert_eq!(m.get(NodeId(3)), 0);
        m.raise(NodeId(3), 5);
        m.raise(NodeId(3), 2); // lower: ignored
        m.raise(NodeId(1), 7);
        assert_eq!(m.get(NodeId(3)), 5);
        assert_eq!(m.get(NodeId(1)), 7);
        assert!(m.covers(&[(NodeId(3), 5), (NodeId(1), 6)]));
        assert!(!m.covers(&[(NodeId(3), 6)]));
        let v = m.to_vec();
        assert_eq!(v.len(), 2);
        let mut m2 = WriterMap::default();
        m2.merge_max(&v);
        assert_eq!(m2.get(NodeId(3)), 5);
    }

    #[test]
    fn node_state_accessors() {
        let mut n = ProtoNode::new(4, 10);
        assert_eq!(n.pages.len(), 10);
        n.page(PageNum(3)).access = Access::ReadOnly;
        assert_eq!(n.pages[3].access, Access::ReadOnly);
        assert_eq!(n.lock(7).token, TokenState::Absent);
        n.lock(7).token = TokenState::HeldFree;
        assert_eq!(n.lock(7).token, TokenState::HeldFree);
    }
}
