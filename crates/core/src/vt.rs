//! Vector timestamps: the happens-before machinery of LRC.
//!
//! Every node's intervals are numbered; a vector timestamp maps each node to
//! the highest of its intervals known (paper Section 2.1). Lock grants and
//! barrier releases carry vector timestamps so that write notices can be
//! selected, and — in the home-based protocols — so that page fetches can be
//! version-checked against the home's per-writer flush state (Section 2.4.2).

use std::cmp::Ordering;
use std::fmt;

use svm_machine::NodeId;

/// A vector timestamp over `P` nodes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorTime(Vec<u32>);

impl VectorTime {
    /// The zero timestamp for `nodes` nodes.
    pub fn zero(nodes: usize) -> Self {
        VectorTime(vec![0; nodes])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Fold the components into a running FNV-1a digest (explore-state
    /// hashing): length-prefixed so adjacent vectors cannot alias.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        h = crate::trace::fnv1a64(h, &(self.0.len() as u64).to_le_bytes());
        for &c in &self.0 {
            h = crate::trace::fnv1a64(h, &c.to_le_bytes());
        }
        h
    }

    /// Whether the vector has zero components (never for a real machine).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component for `node`.
    pub fn get(&self, node: NodeId) -> u32 {
        self.0[node.index()]
    }

    /// Set the component for `node`.
    pub fn set(&mut self, node: NodeId, v: u32) {
        self.0[node.index()] = v;
    }

    /// Increment `node`'s component and return the new value.
    pub fn bump(&mut self, node: NodeId) -> u32 {
        self.0[node.index()] += 1;
        self.0[node.index()]
    }

    /// Componentwise maximum with `other` (learning its knowledge).
    pub fn merge(&mut self, other: &VectorTime) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// `self >= other` componentwise: everything `other` knows, `self`
    /// knows.
    pub fn dominates(&self, other: &VectorTime) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a >= b)
    }

    /// Causal comparison: `Less` iff `self` happened strictly before
    /// `other`, `None` for concurrent timestamps.
    pub fn causal_cmp(&self, other: &VectorTime) -> Option<Ordering> {
        let le = other.dominates(self);
        let ge = self.dominates(other);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Wire/heap footprint: the full-vector-timestamp cost that makes
    /// homeless write notices expensive (paper Section 4.6).
    pub fn bytes(&self) -> usize {
        4 * self.0.len()
    }

    /// Iterate `(node, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u16), v))
    }
}

impl fmt::Debug for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vt{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: &[u32]) -> VectorTime {
        VectorTime(v.to_vec())
    }

    #[test]
    fn bump_and_get() {
        let mut t = VectorTime::zero(3);
        assert_eq!(t.bump(NodeId(1)), 1);
        assert_eq!(t.bump(NodeId(1)), 2);
        assert_eq!(t.get(NodeId(1)), 2);
        assert_eq!(t.get(NodeId(0)), 0);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = vt(&[1, 5, 2]);
        a.merge(&vt(&[3, 1, 2]));
        assert_eq!(a, vt(&[3, 5, 2]));
    }

    #[test]
    fn dominance_and_causality() {
        let a = vt(&[1, 2, 3]);
        let b = vt(&[2, 2, 3]);
        let c = vt(&[0, 3, 3]);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert_eq!(a.causal_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.causal_cmp(&a), Some(Ordering::Greater));
        assert_eq!(a.causal_cmp(&a), Some(Ordering::Equal));
        assert_eq!(b.causal_cmp(&c), None, "concurrent");
    }

    #[test]
    fn wire_bytes_grow_with_nodes() {
        assert_eq!(VectorTime::zero(8).bytes(), 32);
        assert_eq!(VectorTime::zero(64).bytes(), 256);
    }
}
