//! Per-run tracing: debug logging and optional access-trace recording.
//!
//! Two independent facilities, both configured per run on
//! [`crate::SvmConfig::trace`] (no process-global state):
//!
//! * **Debug logging** ([`TraceConfig::debug_log`]) — the human-readable
//!   protocol event log on stderr. The `SVM_TRACE` environment variable is
//!   only the *default*; tests and programs can toggle the flag per run
//!   without racing each other through a process-wide cache.
//! * **Recording** ([`TraceConfig::record`]) — a compact, deterministic
//!   [`AccessTrace`]: per node, the ordered stream of shared-memory reads
//!   and writes interleaved with every synchronization event (lock
//!   acquire/release, barrier enter/leave, interval end), stamped with
//!   vector time and virtual time. The trace rides out on
//!   [`crate::RunReport::trace`] and is what `svm-checker` consumes to
//!   verify the run against the release-consistency memory model.
//!
//! Recording charges **no simulated work**: a recorded run has bit-identical
//! virtual time to an unrecorded one, and a run with recording off executes
//! exactly the code it executed before recording existed.
//!
//! ## Compaction
//!
//! Raw per-access events would blow the heap on big runs (a 64-node
//! raytrace performs hundreds of millions of element accesses). The
//! recorder therefore streams into two compact forms:
//!
//! * **Writes** accumulate per page in a run-merged *pending write set*
//!   (later writes overwrite earlier ones, adjacent runs coalesce). The
//!   set is flushed into a single [`TraceEvent::Write`] when a read
//!   overlaps it (so same-node read-after-write expectations stay exact)
//!   and at every synchronization event (the release-consistency
//!   visibility boundary).
//! * **Reads** record a range plus an FNV-1a digest of the bytes seen;
//!   contiguous same-page reads extend the previous event by streaming
//!   into its digest instead of appending a new one.

use std::collections::BTreeMap;

use svm_sim::SimTime;

use crate::vt::VectorTime;

/// Per-run trace configuration (carried on [`crate::SvmConfig`]).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Emit the human-readable protocol event log on stderr.
    pub debug_log: bool,
    /// Record an [`AccessTrace`] and return it on [`crate::RunReport`].
    pub record: bool,
}

impl Default for TraceConfig {
    /// `debug_log` defaults from the `SVM_TRACE` environment variable
    /// (read at configuration time, not once per process); `record`
    /// defaults off.
    fn default() -> Self {
        TraceConfig {
            debug_log: std::env::var("SVM_TRACE").is_ok_and(|v| v != "0"),
            record: false,
        }
    }
}

impl TraceConfig {
    /// A configuration with recording on (debug log still from the
    /// environment).
    pub fn recording() -> Self {
        TraceConfig {
            record: true,
            ..TraceConfig::default()
        }
    }
}

/// FNV-1a 64-bit offset basis.
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Continue an FNV-1a 64-bit digest over `bytes` (start from
/// [`FNV_BASIS`]). Streaming: hashing a concatenation equals chaining the
/// calls.
pub fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One recorded event in a node's stream.
///
/// Data events carry no virtual-time stamp: the application thread touches
/// mapped pages at memory speed, outside the simulation kernel, exactly
/// like a real SVM system — an access is located in virtual time by the
/// synchronization events around it. Sync events are stamped kernel-side.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A (possibly merged) contiguous read: the FNV-1a digest of the bytes
    /// the application observed.
    Read {
        /// Page number.
        page: u32,
        /// Byte offset in the page.
        off: u32,
        /// Byte length (merged reads extend this).
        len: u32,
        /// FNV-1a 64 digest of the observed bytes, in address order.
        digest: u64,
    },
    /// The flushed pending write set of one page: disjoint, offset-sorted
    /// runs of the bytes last written (earlier overwritten bytes are
    /// already gone — the compaction).
    Write {
        /// Page number.
        page: u32,
        /// `(offset_in_page, bytes)` runs, disjoint and ascending.
        runs: Vec<(u32, Box<[u8]>)>,
    },
    /// Lock acquisition (critical-section entry), including free local
    /// re-acquires. `seq` is the recording layer's global per-lock
    /// acquisition number: acquisition `s` happens-after release `s-1`.
    Acquire {
        /// Lock id.
        lock: u32,
        /// Global acquisition sequence number for this lock (from 1).
        seq: u64,
        /// The node's vector time after the acquire.
        vt: VectorTime,
        /// Virtual time of the acquire.
        at: SimTime,
    },
    /// Lock release (critical-section exit).
    Release {
        /// Lock id.
        lock: u32,
        /// The acquisition sequence number being released.
        seq: u64,
        /// The node's vector time at the release.
        vt: VectorTime,
        /// Virtual time of the release.
        at: SimTime,
    },
    /// Barrier arrival. `round` counts this node's barriers from 0; all
    /// nodes enter the same barriers in the same order, so round `k` is
    /// the same global episode on every node.
    BarrierEnter {
        /// Barrier id.
        barrier: u32,
        /// This node's barrier count, 0-based.
        round: u64,
        /// The node's vector time at arrival.
        vt: VectorTime,
        /// Virtual time of the arrival.
        at: SimTime,
    },
    /// Barrier departure (all arrivals of round `k` happen-before all
    /// departures of round `k`).
    BarrierLeave {
        /// Barrier id.
        barrier: u32,
        /// The round being departed.
        round: u64,
        /// The node's vector time after the merge.
        vt: VectorTime,
        /// Virtual time of the departure.
        at: SimTime,
    },
    /// An interval closed (write notices produced, diffs resolved). Purely
    /// informational for the checker (vector-time sanity); carries the
    /// dirtied pages.
    IntervalEnd {
        /// The interval number just closed (this node's component).
        interval: u32,
        /// The node's vector time after the close.
        vt: VectorTime,
        /// Virtual time of the close.
        at: SimTime,
        /// Pages dirtied in the closed interval.
        pages: Vec<u32>,
    },
    /// The node was declared dead by the failure detector: nothing follows
    /// in its stream except recovery-synthesized events (a lock release for
    /// a critical section it died inside), and the checker excuses it from
    /// every barrier round it had not yet entered.
    Crash {
        /// Virtual time of the declaration.
        at: SimTime,
    },
}

impl TraceEvent {
    /// Whether this is a synchronization (non-data) event.
    pub fn is_sync(&self) -> bool {
        !matches!(self, TraceEvent::Read { .. } | TraceEvent::Write { .. })
    }

    /// Fold the event into a running FNV-1a digest, excluding the virtual
    /// time stamps (`at`). The explorer's canonical state hash must equate
    /// states that differ only in *when* things happened, never in *what*
    /// the application observed — so every content field is hashed and
    /// every `SimTime` is dropped.
    pub fn fold_digest(&self, h: u64) -> u64 {
        let mut h = h;
        let word = |h: u64, v: u64| fnv1a64(h, &v.to_le_bytes());
        match self {
            TraceEvent::Read {
                page,
                off,
                len,
                digest,
            } => {
                h = word(h, 1);
                h = word(h, *page as u64);
                h = word(h, *off as u64);
                h = word(h, *len as u64);
                h = word(h, *digest);
            }
            TraceEvent::Write { page, runs } => {
                h = word(h, 2);
                h = word(h, *page as u64);
                h = word(h, runs.len() as u64);
                for (off, bytes) in runs {
                    h = word(h, *off as u64);
                    h = word(h, bytes.len() as u64);
                    h = fnv1a64(h, bytes);
                }
            }
            TraceEvent::Acquire { lock, seq, vt, .. } => {
                h = word(h, 3);
                h = word(h, *lock as u64);
                h = word(h, *seq);
                h = vt.fold_digest(h);
            }
            TraceEvent::Release { lock, seq, vt, .. } => {
                h = word(h, 4);
                h = word(h, *lock as u64);
                h = word(h, *seq);
                h = vt.fold_digest(h);
            }
            TraceEvent::BarrierEnter {
                barrier, round, vt, ..
            } => {
                h = word(h, 5);
                h = word(h, *barrier as u64);
                h = word(h, *round);
                h = vt.fold_digest(h);
            }
            TraceEvent::BarrierLeave {
                barrier, round, vt, ..
            } => {
                h = word(h, 6);
                h = word(h, *barrier as u64);
                h = word(h, *round);
                h = vt.fold_digest(h);
            }
            TraceEvent::IntervalEnd {
                interval,
                vt,
                pages,
                ..
            } => {
                h = word(h, 7);
                h = word(h, *interval as u64);
                h = vt.fold_digest(h);
                h = word(h, pages.len() as u64);
                for p in pages {
                    h = word(h, *p as u64);
                }
            }
            TraceEvent::Crash { .. } => {
                h = word(h, 8);
            }
        }
        h
    }

    /// Approximate heap footprint, bytes (for the trace-size bound).
    pub fn approx_bytes(&self) -> usize {
        let payload = match self {
            TraceEvent::Write { runs, .. } => runs.iter().map(|(_, b)| 16 + b.len()).sum(),
            TraceEvent::Acquire { vt, .. }
            | TraceEvent::Release { vt, .. }
            | TraceEvent::BarrierEnter { vt, .. }
            | TraceEvent::BarrierLeave { vt, .. } => vt.bytes(),
            TraceEvent::IntervalEnd { vt, pages, .. } => vt.bytes() + 4 * pages.len(),
            TraceEvent::Read { .. } | TraceEvent::Crash { .. } => 0,
        };
        std::mem::size_of::<TraceEvent>() + payload
    }
}

/// A complete recorded execution: the initial shared-memory image plus
/// every node's ordered event stream. Deterministic: the same program
/// under the same configuration records the same trace, byte for byte.
#[derive(Clone, Debug)]
pub struct AccessTrace {
    /// Number of nodes.
    pub nodes: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Pages in the shared address space.
    pub num_pages: u32,
    /// The golden (post-initialization) image of the whole address space.
    pub initial: Vec<u8>,
    /// Per-node event streams, in program order.
    pub events: Vec<Vec<TraceEvent>>,
}

impl AccessTrace {
    /// Total recorded events across all nodes.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Approximate heap footprint of the trace in bytes (events plus the
    /// initial image) — what the documented recording bound is stated
    /// against.
    pub fn approx_bytes(&self) -> usize {
        self.initial.len()
            + self
                .events
                .iter()
                .flat_map(|evs| evs.iter().map(TraceEvent::approx_bytes))
                .sum::<usize>()
    }
}

/// The per-node streaming recorder ([`TraceEvent`] producer).
///
/// Shared between the application thread (data accesses) and the protocol
/// agent (sync events) under the same `HandoffCell` contract as the
/// mapping cache: the app thread runs only while the kernel is parked and
/// vice versa, so access is exclusive and — because the kernel only runs
/// handlers *after* the app thread parks at its next request — stream
/// order equals virtual-time order.
#[derive(Debug, Default)]
pub struct NodeRecorder {
    events: Vec<TraceEvent>,
    /// Pending (unflushed) write runs per page: `off -> bytes`, disjoint.
    pending: BTreeMap<u32, BTreeMap<u32, Vec<u8>>>,
    /// Barriers entered so far (assigns rounds).
    rounds: u64,
}

impl NodeRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        NodeRecorder::default()
    }

    /// Record a read of `data` at `page:off`, merging with a directly
    /// preceding contiguous read of the same page.
    pub fn read(&mut self, page: u32, off: u32, data: &[u8]) {
        if let Some(runs) = self.pending.get(&page) {
            let end = off + data.len() as u32;
            let overlaps = runs
                .range(..end)
                .next_back()
                .is_some_and(|(&o, v)| o + v.len() as u32 > off);
            if overlaps {
                self.flush_page(page);
            }
        }
        if let Some(TraceEvent::Read {
            page: p,
            off: o,
            len,
            digest,
        }) = self.events.last_mut()
        {
            if *p == page && *o + *len == off {
                *len += data.len() as u32;
                *digest = fnv1a64(*digest, data);
                return;
            }
        }
        self.events.push(TraceEvent::Read {
            page,
            off,
            len: data.len() as u32,
            digest: fnv1a64(FNV_BASIS, data),
        });
    }

    /// Record a write of `data` at `page:off` into the pending write set
    /// (overwriting and coalescing overlapping/adjacent runs).
    pub fn write(&mut self, page: u32, off: u32, data: &[u8]) {
        let runs = self.pending.entry(page).or_default();
        let end = off + data.len() as u32;
        // Absorb every run overlapping or adjacent to [off, end).
        let mut lo = off;
        let mut hi = end;
        let mut absorbed: Vec<(u32, Vec<u8>)> = Vec::new();
        let keys: Vec<u32> = runs
            .range(..=end)
            .rev()
            .take_while(|(&o, v)| o + v.len() as u32 >= off)
            .map(|(&o, _)| o)
            .collect();
        for k in keys {
            let v = runs.remove(&k).expect("key just seen");
            lo = lo.min(k);
            hi = hi.max(k + v.len() as u32);
            absorbed.push((k, v));
        }
        let mut merged = vec![0u8; (hi - lo) as usize];
        for (o, v) in absorbed {
            merged[(o - lo) as usize..(o - lo) as usize + v.len()].copy_from_slice(&v);
        }
        merged[(off - lo) as usize..(off - lo) as usize + data.len()].copy_from_slice(data);
        runs.insert(lo, merged);
    }

    fn flush_page(&mut self, page: u32) {
        if let Some(runs) = self.pending.remove(&page) {
            if !runs.is_empty() {
                self.events.push(TraceEvent::Write {
                    page,
                    runs: runs
                        .into_iter()
                        .map(|(o, v)| (o, v.into_boxed_slice()))
                        .collect(),
                });
            }
        }
    }

    /// Flush every pending write set (synchronization boundary).
    pub fn flush_all(&mut self) {
        let pages: Vec<u32> = self.pending.keys().copied().collect();
        for p in pages {
            self.flush_page(p);
        }
    }

    /// Record a lock acquisition.
    pub fn acquire(&mut self, lock: u32, seq: u64, vt: VectorTime, at: SimTime) {
        self.flush_all();
        self.events.push(TraceEvent::Acquire { lock, seq, vt, at });
    }

    /// Record a lock release.
    pub fn release(&mut self, lock: u32, seq: u64, vt: VectorTime, at: SimTime) {
        self.flush_all();
        self.events.push(TraceEvent::Release { lock, seq, vt, at });
    }

    /// Record a barrier arrival (assigns this node's next round).
    pub fn barrier_enter(&mut self, barrier: u32, vt: VectorTime, at: SimTime) {
        self.flush_all();
        let round = self.rounds;
        self.rounds += 1;
        self.events.push(TraceEvent::BarrierEnter {
            barrier,
            round,
            vt,
            at,
        });
    }

    /// Record a barrier departure (pairs with the latest arrival).
    pub fn barrier_leave(&mut self, barrier: u32, vt: VectorTime, at: SimTime) {
        self.flush_all();
        debug_assert!(self.rounds > 0, "barrier departure without arrival");
        self.events.push(TraceEvent::BarrierLeave {
            barrier,
            round: self.rounds - 1,
            vt,
            at,
        });
    }

    /// Record an interval close.
    pub fn interval_end(&mut self, interval: u32, vt: VectorTime, at: SimTime, pages: Vec<u32>) {
        self.flush_all();
        self.events.push(TraceEvent::IntervalEnd {
            interval,
            vt,
            at,
            pages,
        });
    }

    /// Record the node's death (declared by the failure detector).
    pub fn crash(&mut self, at: SimTime) {
        self.flush_all();
        self.events.push(TraceEvent::Crash { at });
    }

    /// Finish recording: flush pending writes and surrender the stream.
    pub fn finish(&mut self) -> Vec<TraceEvent> {
        self.flush_all();
        std::mem::take(&mut self.events)
    }

    /// Time-erased digest of everything recorded so far: the flushed event
    /// stream in order, the pending (unflushed) per-page write runs, and
    /// the barrier-round counter. This is the application-observation
    /// component of the explorer's canonical state hash: two explore states
    /// with equal recorder digests have shown their applications identical
    /// data and synchronization histories.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a64(FNV_BASIS, &(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            h = e.fold_digest(h);
        }
        h = fnv1a64(h, &(self.pending.len() as u64).to_le_bytes());
        for (page, runs) in &self.pending {
            h = fnv1a64(h, &(*page as u64).to_le_bytes());
            h = fnv1a64(h, &(runs.len() as u64).to_le_bytes());
            for (off, bytes) in runs {
                h = fnv1a64(h, &(*off as u64).to_le_bytes());
                h = fnv1a64(h, &(bytes.len() as u64).to_le_bytes());
                h = fnv1a64(h, bytes);
            }
        }
        fnv1a64(h, &self.rounds.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reads_env_per_call() {
        // No OnceLock: two defaults constructed in one process can differ
        // if the environment changed in between. We cannot mutate the
        // environment safely in a threaded test runner, so just assert the
        // flag is off-by-default shape and record defaults off.
        let c = TraceConfig::default();
        assert!(!c.record);
        assert!(TraceConfig::recording().record);
    }

    #[test]
    fn fnv_streaming_matches_concatenation() {
        let whole = fnv1a64(FNV_BASIS, b"hello world");
        let chained = fnv1a64(fnv1a64(FNV_BASIS, b"hello "), b"world");
        assert_eq!(whole, chained);
        assert_ne!(whole, fnv1a64(FNV_BASIS, b"hello worle"));
    }

    #[test]
    fn contiguous_reads_merge() {
        let mut r = NodeRecorder::new();
        r.read(3, 0, &[1, 2]);
        r.read(3, 2, &[3, 4]);
        r.read(3, 8, &[9]); // gap: new event
        r.read(4, 9, &[0]); // other page: new event
        let evs = r.finish();
        assert_eq!(evs.len(), 3);
        let TraceEvent::Read {
            page,
            off,
            len,
            digest,
        } = &evs[0]
        else {
            panic!("expected read");
        };
        assert_eq!((*page, *off, *len), (3, 0, 4));
        assert_eq!(*digest, fnv1a64(FNV_BASIS, &[1, 2, 3, 4]));
    }

    #[test]
    fn pending_writes_coalesce_and_overwrite() {
        let mut r = NodeRecorder::new();
        r.write(1, 0, &[1, 1, 1, 1]);
        r.write(1, 2, &[9, 9]); // overlap: overwrites tail
        r.write(1, 4, &[5, 5]); // adjacent: coalesces
        r.write(1, 10, &[7]); // separate run
        let evs = r.finish();
        assert_eq!(evs.len(), 1);
        let TraceEvent::Write { page, runs } = &evs[0] else {
            panic!("expected write");
        };
        assert_eq!(*page, 1);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 0);
        assert_eq!(&*runs[0].1, &[1, 1, 9, 9, 5, 5]);
        assert_eq!((runs[1].0, &*runs[1].1), (10, &[7u8][..]));
    }

    #[test]
    fn overlapping_read_flushes_the_write_set_first() {
        let mut r = NodeRecorder::new();
        r.write(2, 4, &[8, 8]);
        r.read(2, 5, &[8]); // overlaps the pending run
        let evs = r.finish();
        assert!(matches!(evs[0], TraceEvent::Write { page: 2, .. }));
        assert!(matches!(
            evs[1],
            TraceEvent::Read {
                page: 2,
                off: 5,
                ..
            }
        ));
    }

    #[test]
    fn non_overlapping_read_leaves_writes_pending() {
        let mut r = NodeRecorder::new();
        r.write(2, 0, &[1]);
        r.read(2, 100, &[0]);
        let evs = r.finish();
        // Read first (write stayed pending until finish).
        assert!(matches!(evs[0], TraceEvent::Read { .. }));
        assert!(matches!(evs[1], TraceEvent::Write { .. }));
    }

    #[test]
    fn sync_events_flush_and_count_rounds() {
        let mut r = NodeRecorder::new();
        let vt = VectorTime::zero(2);
        r.write(0, 0, &[1]);
        r.barrier_enter(0, vt.clone(), SimTime::ZERO);
        r.barrier_leave(0, vt.clone(), SimTime::ZERO);
        r.barrier_enter(1, vt.clone(), SimTime::ZERO);
        let evs = r.finish();
        assert!(matches!(evs[0], TraceEvent::Write { .. }));
        assert!(matches!(evs[1], TraceEvent::BarrierEnter { round: 0, .. }));
        assert!(matches!(evs[2], TraceEvent::BarrierLeave { round: 0, .. }));
        assert!(matches!(evs[3], TraceEvent::BarrierEnter { round: 1, .. }));
    }
}
