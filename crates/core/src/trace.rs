//! Optional protocol event tracing (set `SVM_TRACE=1`).

use std::sync::OnceLock;

static TRACE: OnceLock<bool> = OnceLock::new();

/// Whether protocol tracing is enabled (checked once per process).
pub fn trace_on() -> bool {
    *TRACE.get_or_init(|| std::env::var("SVM_TRACE").is_ok_and(|v| v != "0"))
}
