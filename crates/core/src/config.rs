//! Protocol and run configuration.

use svm_machine::{CostModel, NodeId};
use svm_mem::PageNum;

/// Update-location strategy: the paper's central axis.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Homeless: diffs live at their writers until garbage collection.
    Lrc,
    /// Home-based: diffs are flushed to each page's home and discarded.
    Hlrc,
}

/// One of the four protocols evaluated in the paper, or AURC — the
/// hardware automatic-update protocol HLRC derives from (paper Section
/// 2.2), included for the AURC/HLRC comparison the paper builds on (its
/// references \[15, 16\]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProtocolName {
    /// Standard homeless LRC on the compute processor.
    Lrc,
    /// Homeless LRC with co-processor overlap (diffs, fetch service).
    Olrc,
    /// Home-based LRC on the compute processor.
    Hlrc,
    /// Home-based LRC with co-processor overlap (diffs, home application,
    /// fetch service).
    Ohlrc,
    /// Automatic Update Release Consistency: updates detected and
    /// propagated to the home by write-through hardware — zero software
    /// overhead, no twins, higher update traffic (modeled; see
    /// `svm-core::protocol` docs).
    Aurc,
}

impl ProtocolName {
    /// The paper's four protocols, in its reporting order.
    pub const ALL: [ProtocolName; 4] = [
        ProtocolName::Lrc,
        ProtocolName::Olrc,
        ProtocolName::Hlrc,
        ProtocolName::Ohlrc,
    ];

    /// The paper's four plus the AURC reference point.
    pub const WITH_AURC: [ProtocolName; 5] = [
        ProtocolName::Lrc,
        ProtocolName::Olrc,
        ProtocolName::Hlrc,
        ProtocolName::Ohlrc,
        ProtocolName::Aurc,
    ];

    /// The home/homeless axis.
    pub fn kind(self) -> ProtocolKind {
        match self {
            ProtocolName::Lrc | ProtocolName::Olrc => ProtocolKind::Lrc,
            ProtocolName::Hlrc | ProtocolName::Ohlrc | ProtocolName::Aurc => ProtocolKind::Hlrc,
        }
    }

    /// Whether protocol work is offloaded to the co-processor.
    pub fn overlapped(self) -> bool {
        matches!(self, ProtocolName::Olrc | ProtocolName::Ohlrc)
    }

    /// Whether updates propagate via the automatic-update hardware.
    pub fn auto_update(self) -> bool {
        matches!(self, ProtocolName::Aurc)
    }

    /// Display label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolName::Lrc => "LRC",
            ProtocolName::Olrc => "OLRC",
            ProtocolName::Hlrc => "HLRC",
            ProtocolName::Ohlrc => "OHLRC",
            ProtocolName::Aurc => "AURC",
        }
    }
}

impl std::fmt::Display for ProtocolName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How pages are assigned homes (home-based protocols).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HomePolicy {
    /// `page % P` — the baseline used by the home-placement ablation.
    RoundRobin,
    /// Applications assign ranges to their owners (Splash-2-style
    /// placement); unassigned pages fall back to round-robin. This is the
    /// "homes chosen intelligently" case of paper Section 2.2.
    Explicit,
    /// The first node to fault on a page after the spawn becomes its home;
    /// until then the initializing node (node 0) serves it.
    FirstTouch,
}

impl HomePolicy {
    /// The fallback home for `page` before/without explicit assignment.
    pub fn default_home(&self, page: PageNum, nodes: usize) -> NodeId {
        NodeId((page.0 as usize % nodes) as u16)
    }
}

/// Network fault injection + reliable delivery for one run.
///
/// The default is fully inactive: no fault plan is installed in the
/// machine, the reliable-delivery sublayer stays disabled, and the run is
/// bit-identical — output *and* virtual-time metrics — to one under a build
/// that never had either layer.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Seed for the fault-decision stream.
    pub seed: u64,
    /// Probability a cross-node message is dropped.
    pub drop_rate: f64,
    /// Probability a delivered message arrives twice.
    pub dup_rate: f64,
    /// Probability a delivery gets extra jitter (causes reordering).
    pub delay_rate: f64,
    /// Upper bound on injected jitter, microseconds.
    pub max_extra_delay_us: u64,
    /// Probability a message triggers a transient destination-node stall.
    pub stall_rate: f64,
    /// Upper bound on a stall window, microseconds.
    pub max_stall_us: u64,
    /// Retransmission timeout, microseconds.
    pub rto_us: u64,
    /// Max exponent for the exponential backoff (RTO × 2^cap ceiling).
    pub backoff_cap: u32,
    /// Maximum retransmission timeouts per channel before the peer is
    /// declared unreachable (reset whenever an ack makes progress). `None`
    /// retransmits forever — the pre-crash-tolerance behavior, which hangs
    /// on a genuinely dead peer. With a bound, exhaustion surfaces as a
    /// structured peer-down signal: consumed by the failure detector when
    /// [`RecoveryProfile::enabled`], reported as
    /// [`crate::ProtocolError::PeerUnreachable`] otherwise.
    pub max_retries: Option<u32>,
    /// Deterministically drop the first wire message whose
    /// [`crate::msg::SvmMsg::kind_name`] equals this string (targeted
    /// loss-of-each-message-type regression tests).
    pub drop_first_kind: Option<&'static str>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_extra_delay_us: 2_000,
            stall_rate: 0.0,
            max_stall_us: 20_000,
            rto_us: 5_000,
            backoff_cap: 6,
            max_retries: None,
            drop_first_kind: None,
        }
    }
}

impl FaultProfile {
    /// A chaos profile: drop + duplicate at `rate`, jitter at `4 × rate`.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultProfile {
            seed,
            drop_rate: rate,
            dup_rate: rate,
            delay_rate: (4.0 * rate).min(1.0),
            ..FaultProfile::default()
        }
    }

    /// Whether random network faults can fire (drives the machine plan).
    pub fn network_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || self.stall_rate > 0.0
    }

    /// Whether the reliable-delivery sublayer must be on (random faults or
    /// a targeted deterministic drop).
    pub fn is_active(&self) -> bool {
        self.network_active() || self.drop_first_kind.is_some()
    }
}

/// What the protocol does once the failure detector declares a peer dead.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Repair and continue: re-elect homes, revoke dead nodes' lock grants,
    /// re-form barriers on the surviving membership, and let the run finish
    /// on the survivors (degraded stats reported). Dependencies that only
    /// the dead node could satisfy — e.g. diffs that lived solely in a
    /// homeless node's memory — still end the run with a structured error;
    /// they are honestly unrecoverable.
    Graceful,
    /// Halt immediately with a structured [`crate::ProtocolError::NodeFailed`]
    /// naming the dead node and the virtual time of detection. Never a hang,
    /// never a panic.
    FailFast,
}

/// Failure detection + recovery for one run.
///
/// The default is fully inactive: no heartbeat timers are armed, the
/// reliable-delivery sublayer is not forced on, and the run is bit-identical
/// to one under a build that never had the recovery layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryProfile {
    /// Arm the heartbeat-based failure detector and the recovery machinery.
    pub enabled: bool,
    /// Heartbeat period in virtual microseconds.
    pub heartbeat_us: u64,
    /// A peer is declared dead after `miss_threshold` heartbeat periods
    /// with no message of any kind from it.
    pub miss_threshold: u32,
    /// Repair-and-continue vs. structured halt on detection.
    pub mode: RecoveryMode,
}

impl Default for RecoveryProfile {
    fn default() -> Self {
        RecoveryProfile {
            enabled: false,
            heartbeat_us: 200_000,
            miss_threshold: 5,
            mode: RecoveryMode::Graceful,
        }
    }
}

impl RecoveryProfile {
    /// An enabled profile with default timing in the given mode.
    pub fn active(mode: RecoveryMode) -> Self {
        RecoveryProfile {
            enabled: true,
            mode,
            ..RecoveryProfile::default()
        }
    }

    /// Virtual time without any message from a peer after which it is
    /// declared dead.
    pub fn detection_window_us(&self) -> u64 {
        self.heartbeat_us.saturating_mul(self.miss_threshold as u64)
    }
}

/// A deliberately seeded protocol bug, for checker self-tests.
///
/// `svm-checker` is only a trustworthy oracle if it demonstrably *fails*
/// corrupted runs. Each variant disables one load-bearing protocol step at
/// a precise point; the mutation harness asserts the checker reports a
/// read-legality violation for each. `None` (the default) is an exact
/// no-op: the comparison sites compile to a branch on a `None` that is
/// never taken.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// Skip the `nth` diff application (0-based, counted across home
    /// flushes and homeless fetch validation alike) while still raising
    /// the applied vector — the page silently keeps stale bytes that the
    /// version gate claims are current.
    SkipDiffApply {
        /// Which diff application to skip, 0-based.
        nth: u32,
    },
    /// Drop the write notices of the `nth` closed interval (0-based):
    /// diffs still resolve, but no peer ever learns the interval existed,
    /// so cached copies are never invalidated.
    DropWriteNotices {
        /// Which interval close loses its notices, 0-based.
        nth: u32,
    },
    /// Serve every home page request immediately, ignoring the
    /// `applied.covers(&need)` version gate — a racing fetch can observe
    /// the home copy before in-flight diffs land.
    UngatedHomeReply,
    /// Send the `nth` lock grant (0-based) with an empty write-notice
    /// record set: the new holder merges the token's vector time but never
    /// invalidates the pages those intervals dirtied.
    DropLockGrantRecords {
        /// Which lock grant loses its records, 0-based.
        nth: u32,
    },
    /// During home failover, skip the coverage check and the rebuild from
    /// harvested in-flight diffs: the first surviving copy-holder is
    /// elected unconditionally and its applied vector is raised to claim
    /// coverage it does not have — readers then fetch stale bytes that the
    /// version gate vouches for.
    SkipHomeRebuild,
    /// During lock recovery, regenerate a token lost with a dead holder but
    /// send the regrant with an empty write-notice record set: the new
    /// holder merges the token's vector time yet never invalidates the
    /// pages those intervals dirtied.
    LeakDeadLockGrant,
}

/// Everything a protocol run needs to know.
#[derive(Clone, Debug)]
pub struct SvmConfig {
    /// Which of the four protocols to run.
    pub protocol: ProtocolName,
    /// Number of nodes.
    pub nodes: usize,
    /// Machine cost model (also fixes the page size).
    pub cost: CostModel,
    /// Home assignment policy (ignored by the homeless protocols except for
    /// directory bookkeeping).
    pub home_policy: HomePolicy,
    /// Garbage-collection trigger: protocol memory per node above which a
    /// barrier runs GC (homeless protocols only).
    pub gc_threshold_bytes: u64,
    /// Network fault injection + reliable delivery (default: off).
    pub fault: FaultProfile,
    /// Heartbeat failure detection + crash recovery (default: off).
    pub recovery: RecoveryProfile,
    /// Node crash–stop schedule executed by the machine (default: none).
    pub node_fault: svm_machine::NodeFaultConfig,
    /// Debug logging + access-trace recording (default: log from
    /// `SVM_TRACE`, recording off).
    pub trace: crate::trace::TraceConfig,
    /// Deliberately seeded protocol bug for checker self-tests
    /// (default: none).
    pub mutation: Option<SeededBug>,
}

impl SvmConfig {
    /// A configuration with paper-like defaults.
    pub fn new(protocol: ProtocolName, nodes: usize) -> Self {
        SvmConfig {
            protocol,
            nodes,
            cost: CostModel::paragon(),
            home_policy: HomePolicy::Explicit,
            // The Paragon nodes had 32 MB shared by the OS, the
            // application and the protocol; TreadMarks-style systems GC
            // well before exhausting memory.
            gc_threshold_bytes: 8 << 20,
            fault: FaultProfile::default(),
            recovery: RecoveryProfile::default(),
            node_fault: svm_machine::NodeFaultConfig::default(),
            trace: crate::trace::TraceConfig::default(),
            mutation: None,
        }
    }

    /// Page size in bytes (from the cost model).
    pub fn page_size(&self) -> usize {
        self.cost.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_axes() {
        assert_eq!(ProtocolName::Lrc.kind(), ProtocolKind::Lrc);
        assert_eq!(ProtocolName::Ohlrc.kind(), ProtocolKind::Hlrc);
        assert!(!ProtocolName::Hlrc.overlapped());
        assert!(ProtocolName::Olrc.overlapped());
        assert_eq!(ProtocolName::ALL.len(), 4);
    }

    #[test]
    fn round_robin_homes() {
        let p = HomePolicy::RoundRobin;
        assert_eq!(p.default_home(PageNum(5), 4), NodeId(1));
        assert_eq!(p.default_home(PageNum(8), 4), NodeId(0));
    }
}
