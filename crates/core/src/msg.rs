//! Protocol wire messages, application requests, and write-notice records.

use std::rc::Rc;

use svm_machine::{Message, NodeId, TrafficClass};
use svm_mem::{Diff, PageNum};
use svm_sim::SimTime;

use crate::api::{BarrierId, LockId};
use crate::vt::VectorTime;

/// A write-notice record: one interval of one writer and the pages it
/// dirtied.
///
/// In the homeless protocols the record carries (and is charged for) the
/// full vector timestamp, which is what makes their write notices grow with
/// the machine size (paper Section 4.6); the home-based protocols only need
/// `(writer, interval, pages)`.
#[derive(Clone, Debug)]
pub struct IntervalRec {
    /// The writing node.
    pub writer: NodeId,
    /// The writer's interval index.
    pub interval: u32,
    /// The writer's vector time at the interval's end.
    pub vt: VectorTime,
    /// Pages dirtied during the interval.
    pub pages: Vec<PageNum>,
}

impl IntervalRec {
    /// Wire/heap footprint of the record. Home-based runs construct records
    /// with an empty vector time, so the flavor difference falls out of the
    /// data itself.
    pub fn bytes(&self) -> usize {
        8 + self.vt.bytes() + 4 * self.pages.len()
    }
}

/// Total footprint of a batch of records.
pub fn records_bytes(records: &[Rc<IntervalRec>]) -> usize {
    records.iter().map(|r| r.bytes()).sum()
}

/// What the application can ask the protocol for.
#[derive(Debug)]
pub enum SvmReq {
    /// Access fault on `page` (the mapping cache missed or lacked rights).
    Fault {
        /// The faulting page.
        page: PageNum,
        /// Whether write access is required.
        write: bool,
    },
    /// Acquire a lock.
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// Enter a barrier.
    Barrier(BarrierId),
    /// The fault loop exhausted its retries without obtaining a usable
    /// mapping — a protocol invariant violation, reported structurally.
    /// The request never completes: the run halts.
    MapFailed {
        /// The page that would not map.
        page: PageNum,
    },
    /// Read the virtual clock. Completes immediately (zero modeled cost)
    /// with [`SvmResp::Time`] — request-driven workloads (`svm-serve`)
    /// timestamp their operations with it.
    Clock,
    /// Park the application until virtual time `until` (or complete
    /// immediately if the deadline already passed). The wait is accounted
    /// as idle time; open-loop load generators use it to pace seeded
    /// arrival schedules in virtual time.
    SleepUntil {
        /// Absolute virtual-time deadline.
        until: SimTime,
    },
}

/// What the protocol answers an application request with, beyond the bare
/// acknowledgment (`AppResponse::Done`) that faults and synchronization
/// complete with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SvmResp {
    /// The virtual time at which a [`SvmReq::Clock`] request was serviced.
    Time(SimTime),
}

/// Protocol messages. `Clone` so the reliable-delivery layer can keep
/// unacked copies for retransmission (diffs, records, and reply payloads
/// are `Rc`-shared, so clones are cheap).
#[derive(Clone, Debug)]
pub enum SvmMsg {
    // ---- synchronization (always serviced by the compute processor) ----
    /// Acquire request, to the lock's manager.
    LockRequest {
        /// The lock.
        lock: LockId,
        /// The acquiring node.
        requester: NodeId,
        /// The acquirer's vector time (for write-notice selection).
        vt: VectorTime,
    },
    /// Manager forwarding the request to the last requester in the chain.
    LockForward {
        /// The lock.
        lock: LockId,
        /// The acquiring node.
        requester: NodeId,
        /// The acquirer's vector time.
        vt: VectorTime,
    },
    /// The grant, from the previous holder to the acquirer.
    LockGrant {
        /// The lock.
        lock: LockId,
        /// The releaser's vector time.
        vt: VectorTime,
        /// Write notices the acquirer has not seen.
        records: Vec<Rc<IntervalRec>>,
    },
    /// Barrier arrival, to the barrier manager.
    BarrierArrive {
        /// The barrier.
        barrier: BarrierId,
        /// The arriving node.
        node: NodeId,
        /// Its vector time.
        vt: VectorTime,
        /// Records the manager has not seen (since the last barrier).
        records: Vec<Rc<IntervalRec>>,
        /// The node's current protocol memory (drives the GC decision).
        proto_mem: u64,
    },
    /// Barrier departure, from the manager.
    BarrierRelease {
        /// The barrier.
        barrier: BarrierId,
        /// The merged (maximal) vector time.
        vt: VectorTime,
        /// Records this node has not seen.
        records: Vec<Rc<IntervalRec>>,
        /// Run garbage collection before departing (homeless protocols).
        gc: bool,
    },

    // ---- homeless (LRC / OLRC) data movement ----
    /// Ask `writer` for its diffs of `page` in `(from_excl, to_incl]`.
    DiffRequest {
        /// The page.
        page: PageNum,
        /// Who is asking (reply target).
        requester: NodeId,
        /// Whose diffs.
        writer: NodeId,
        /// Lower interval bound, exclusive.
        from_excl: u32,
        /// Upper interval bound, inclusive.
        to_incl: u32,
    },
    /// Diffs returned by a writer.
    DiffReply {
        /// The page.
        page: PageNum,
        /// The writer's diffs, oldest first.
        diffs: Vec<DiffPacket>,
    },
    /// Full-page request (cold or post-GC copies), to a copyset member.
    PageRequest {
        /// The page.
        page: PageNum,
        /// Who is asking.
        requester: NodeId,
    },
    /// Full page returned by a copyset member.
    PageReply {
        /// The page.
        page: PageNum,
        /// Page contents (`Rc` so fault-plan duplicates and retransmit
        /// copies share one 8 KiB buffer instead of deep-cloning it).
        data: Rc<Vec<u8>>,
        /// Per-writer intervals already included in `data`.
        applied: Vec<(NodeId, u32)>,
    },

    // ---- home-based (HLRC / OHLRC) data movement ----
    /// A diff flushed to the page's home at interval end.
    DiffFlush {
        /// The page.
        page: PageNum,
        /// The writer.
        writer: NodeId,
        /// The writer's interval.
        interval: u32,
        /// The updates.
        diff: Diff,
    },
    /// Version-checked page fetch, to the home.
    HomeRequest {
        /// The page.
        page: PageNum,
        /// Who is asking.
        requester: NodeId,
        /// Required per-writer flush timestamps (paper Section 2.4.2).
        need: Vec<(NodeId, u32)>,
    },
    /// The home's reply: a whole, up-to-date page.
    HomeReply {
        /// The page.
        page: PageNum,
        /// Page contents (`Rc`-shared; see [`SvmMsg::PageReply`]).
        data: Rc<Vec<u8>>,
        /// Per-writer intervals included (becomes the fetcher's `applied`).
        applied: Vec<(NodeId, u32)>,
    },

    // ---- crash recovery ----
    /// Failure-detector verdict, broadcast by the detecting node (and posted
    /// to itself): `dead` has crashed. Each receiver runs its local share of
    /// recovery — applying harvested in-flight diffs if it is a page's new
    /// home, adopting the barrier, repairing locks it manages, re-driving
    /// its own orphaned fetches.
    NodeDown {
        /// The node declared dead.
        dead: NodeId,
    },

    // ---- intra-node posts (overlapped protocols; never on the wire) ----
    /// Diff work for the pages of one just-ended interval (posted cpu ->
    /// co-processor). The diff *content* is frozen at interval end — the
    /// paper's co-processor dispatch loop serializes diff creation against
    /// later page mutations, so a pending diff never absorbs newer writes —
    /// while the computation *time* is charged on the co-processor when the
    /// task runs.
    DiffTask {
        /// The interval that closed.
        interval: u32,
        /// The interval's vector time (homeless runs need it for the store).
        vt: VectorTime,
        /// `(page, frozen diff)` work items.
        items: Vec<(PageNum, Diff)>,
    },
}

/// One diff in a [`SvmMsg::DiffReply`].
#[derive(Clone, Debug)]
pub struct DiffPacket {
    /// The writer (all packets in a reply share it).
    pub writer: NodeId,
    /// The writer's interval that produced the diff.
    pub interval: u32,
    /// The interval's vector time (for causal ordering at the applier).
    /// Aliases the stored diff's clock — packets are borrowed views of the
    /// writer's store, not copies.
    pub vt: Rc<VectorTime>,
    /// The updates.
    pub diff: Rc<Diff>,
}

impl SvmMsg {
    /// Short message-kind label (trace output, Figures 1–2 timelines).
    pub fn kind_name(&self) -> &'static str {
        match self {
            SvmMsg::LockRequest { .. } => "lock-request",
            SvmMsg::LockForward { .. } => "lock-forward",
            SvmMsg::LockGrant { .. } => "lock-grant(+write-notices)",
            SvmMsg::BarrierArrive { .. } => "barrier-arrive",
            SvmMsg::BarrierRelease { .. } => "barrier-release",
            SvmMsg::DiffRequest { .. } => "diff-request",
            SvmMsg::DiffReply { .. } => "diff-reply",
            SvmMsg::PageRequest { .. } => "page-request",
            SvmMsg::PageReply { .. } => "page-reply",
            SvmMsg::DiffFlush { .. } => "diff-flush(to home)",
            SvmMsg::HomeRequest { .. } => "page-request(to home)",
            SvmMsg::HomeReply { .. } => "page-reply(from home)",
            SvmMsg::NodeDown { .. } => "node-down",
            SvmMsg::DiffTask { .. } => "diff-task(post to coproc)",
        }
    }
}

impl Message for SvmMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            SvmMsg::LockRequest { vt, .. } | SvmMsg::LockForward { vt, .. } => 12 + vt.bytes(),
            SvmMsg::LockGrant { vt, records, .. } => 16 + vt.bytes() + records_bytes(records),
            SvmMsg::BarrierArrive { vt, records, .. } => 20 + vt.bytes() + records_bytes(records),
            SvmMsg::BarrierRelease { vt, records, .. } => 16 + vt.bytes() + records_bytes(records),
            SvmMsg::DiffRequest { .. } => 24,
            SvmMsg::DiffReply { diffs, .. } => {
                16 + diffs
                    .iter()
                    .map(|p| 8 + p.vt.bytes() + p.diff.wire_bytes())
                    .sum::<usize>()
            }
            SvmMsg::PageRequest { .. } => 16,
            SvmMsg::PageReply { data, applied, .. } | SvmMsg::HomeReply { data, applied, .. } => {
                16 + data.len() + 8 * applied.len()
            }
            SvmMsg::DiffFlush { diff, .. } => 16 + diff.wire_bytes(),
            SvmMsg::HomeRequest { need, .. } => 16 + 8 * need.len(),
            SvmMsg::NodeDown { .. } => 12,
            SvmMsg::DiffTask { .. } => 0, // intra-node only
        }
    }

    fn class(&self) -> TrafficClass {
        match self {
            SvmMsg::DiffReply { .. }
            | SvmMsg::PageReply { .. }
            | SvmMsg::HomeReply { .. }
            | SvmMsg::DiffFlush { .. } => TrafficClass::Data,
            SvmMsg::LockRequest { .. }
            | SvmMsg::LockForward { .. }
            | SvmMsg::LockGrant { .. }
            | SvmMsg::BarrierArrive { .. }
            | SvmMsg::BarrierRelease { .. }
            | SvmMsg::DiffRequest { .. }
            | SvmMsg::PageRequest { .. }
            | SvmMsg::HomeRequest { .. }
            | SvmMsg::NodeDown { .. }
            | SvmMsg::DiffTask { .. } => TrafficClass::Protocol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nodes: usize, pages: usize) -> Rc<IntervalRec> {
        Rc::new(IntervalRec {
            writer: NodeId(0),
            interval: 1,
            vt: VectorTime::zero(nodes),
            pages: (0..pages as u32).map(PageNum).collect(),
        })
    }

    #[test]
    fn homeless_records_carry_vector_timestamps() {
        // Homeless runs put the full vector time in each record; home-based
        // runs build records with an empty one.
        assert_eq!(rec(8, 2).bytes(), 8 + 32 + 8);
        assert_eq!(rec(64, 2).bytes(), 8 + 256 + 8);
        assert_eq!(rec(0, 2).bytes(), 8 + 8, "home-based records are small");
    }

    #[test]
    fn grant_sizes_grow_with_machine_size_when_homeless() {
        let big = SvmMsg::LockGrant {
            lock: LockId(0),
            vt: VectorTime::zero(64),
            records: vec![rec(64, 4)],
        };
        let small = SvmMsg::LockGrant {
            lock: LockId(0),
            vt: VectorTime::zero(64),
            records: vec![rec(0, 4)],
        };
        assert!(big.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn classes() {
        let flush = SvmMsg::DiffFlush {
            page: PageNum(0),
            writer: NodeId(0),
            interval: 1,
            diff: Diff::default(),
        };
        assert_eq!(flush.class(), TrafficClass::Data);
        let req = SvmMsg::PageRequest {
            page: PageNum(0),
            requester: NodeId(1),
        };
        assert_eq!(req.class(), TrafficClass::Protocol);
    }

    #[test]
    fn page_reply_priced_by_page_size() {
        let reply = SvmMsg::HomeReply {
            page: PageNum(0),
            data: Rc::new(vec![0; 8192]),
            applied: vec![],
        };
        assert_eq!(reply.wire_bytes(), 16 + 8192);
    }
}
