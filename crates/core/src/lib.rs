//! The paper's contribution: four Lazy Release Consistency protocols for
//! shared virtual memory.
//!
//! This crate implements, over the `svm-machine` multicomputer model and the
//! `svm-mem` page/diff substrate:
//!
//! * **LRC** — the standard homeless multiple-writer protocol (TreadMarks
//!   style): twins on first write, diffs at interval ends kept at the
//!   writers, diff collection in causal order on page faults, garbage
//!   collection at barriers under memory pressure (paper Section 2.1, 3.5).
//! * **HLRC** — Home-based LRC: every page has a home; diffs are shipped to
//!   the home at interval end, applied eagerly and discarded; faults are a
//!   single round trip fetching the whole page, version-checked with
//!   per-writer flush timestamps (Section 2.3).
//! * **OLRC / OHLRC** — the overlapped variants that offload diff creation,
//!   diff application at the home, and fetch service onto each node's
//!   communication co-processor (Section 2.4).
//!
//! Applications program against [`api::SvmCtx`] (the Splash-2-style
//! `G_MALLOC` / `LOCK` / `UNLOCK` / `BARRIER` interface of paper Section
//! 3.2) and are executed by [`runner::run`], which returns a [`RunReport`]
//! with everything the paper's tables and figures need: speedups, time
//! breakdowns, operation counts, traffic, and protocol memory.

pub mod api;
pub mod config;
pub mod explore;
pub mod metrics;
pub mod msg;
pub mod protocol;
pub mod runner;
pub mod trace;
pub mod vt;

pub use api::{BarrierId, LockId, SvmCtx};
pub use config::{
    FaultProfile, HomePolicy, ProtocolKind, ProtocolName, RecoveryMode, RecoveryProfile, SeededBug,
    SvmConfig,
};
pub use explore::{
    all_done, crash_key, detect_key, enabled_deliveries, invariant_violations, live_nodes,
    pending_detects, run_explored, state_digest, terminal_violations, DeliveryChoice, ExploreRun,
};
pub use metrics::{MemoryStats, NodeCounters, ProtocolReport};
pub use msg::{SvmReq, SvmResp};
pub use protocol::recovery::RecoveryStats;
pub use protocol::reliable::{RetransmitEvent, Wire};
pub use protocol::{ProtocolError, SvmAgent};
pub use runner::{run, RunReport, Setup};
pub use trace::{AccessTrace, TraceConfig, TraceEvent};
pub use vt::VectorTime;
