//! Wiring: allocate and initialize shared data, spawn the machine, run a
//! program under a protocol, and collect the report.

use std::sync::Arc;

use svm_machine::{Breakdown, NodeId, RunOutcome, World};
use svm_mem::{GAddr, Geometry, GlobalHeap};
use svm_sim::HandoffCell;

use crate::api::{AppPort, NodeCache, Scalar, SharedArr, SvmCtx};
use crate::config::{ProtocolName, SvmConfig};
use crate::metrics::ProtocolReport;
use crate::protocol::recovery::RecoveryStats;
use crate::protocol::reliable::RetransmitEvent;
use crate::protocol::{ProtocolError, SvmAgent};
use crate::trace::AccessTrace;

/// The initialization-phase handle: `G_MALLOC` plus golden-image writes and
/// home-placement hints. Runs once, "on node 0, before spawning the
/// workers" (paper Section 3.2).
pub struct Setup {
    heap: GlobalHeap,
    golden: Vec<u8>,
    homes: std::collections::BTreeMap<u32, NodeId>,
    nodes: usize,
}

impl Setup {
    fn new(geometry: Geometry, nodes: usize) -> Self {
        Setup {
            heap: GlobalHeap::new(geometry),
            golden: Vec::new(),
            homes: std::collections::BTreeMap::new(),
            nodes,
        }
    }

    /// Number of nodes the program will run on.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.heap.geometry().page_size()
    }

    fn ensure_golden(&mut self) {
        let need = self.heap.allocated_bytes() as usize;
        if self.golden.len() < need {
            self.golden.resize(need, 0);
        }
    }

    /// Allocate a shared array of `n` scalars (naturally aligned).
    pub fn alloc_array<T: Scalar>(&mut self, n: usize, label: &str) -> SharedArr<T> {
        let size = std::mem::size_of::<T>();
        let base = self
            .heap
            .alloc((n * size) as u64, size.max(8) as u64, label);
        self.ensure_golden();
        SharedArr::from_raw(base, n)
    }

    /// Allocate a page-aligned, page-padded shared array (the Splash-2
    /// idiom for avoiding false sharing between partitions).
    pub fn alloc_array_pages<T: Scalar>(&mut self, n: usize, label: &str) -> SharedArr<T> {
        let size = std::mem::size_of::<T>();
        let base = self.heap.alloc_pages((n * size) as u64, label);
        self.ensure_golden();
        SharedArr::from_raw(base, n)
    }

    /// Initialize element `i` in the golden image.
    pub fn init<T: Scalar>(&mut self, arr: &SharedArr<T>, i: usize, v: T) {
        let a = arr.addr(i).0 as usize;
        let size = std::mem::size_of::<T>();
        self.golden[a..a + size].copy_from_slice(&v.to_raw()[..size]);
    }

    /// Read back an initialized element (for reference computations).
    pub fn init_read<T: Scalar>(&self, arr: &SharedArr<T>, i: usize) -> T {
        let a = arr.addr(i).0 as usize;
        let size = std::mem::size_of::<T>();
        let mut raw = [0u8; 8];
        raw[..size].copy_from_slice(&self.golden[a..a + size]);
        T::from_raw(raw)
    }

    /// Initialize a whole array from a slice.
    pub fn init_from<T: Scalar>(&mut self, arr: &SharedArr<T>, src: &[T]) {
        assert_eq!(src.len(), arr.len());
        for (i, v) in src.iter().enumerate() {
            self.init(arr, i, *v);
        }
    }

    /// Hint: the pages of `arr[range]` belong to `node` (used as home under
    /// [`crate::HomePolicy::Explicit`], and as the initial copy owner in all
    /// protocols).
    pub fn assign_home<T: Scalar>(
        &mut self,
        arr: &SharedArr<T>,
        range: std::ops::Range<usize>,
        node: usize,
    ) {
        if range.is_empty() {
            return;
        }
        let size = std::mem::size_of::<T>();
        let start = arr.addr(range.start);
        let len = (range.end - range.start) * size;
        self.assign_home_bytes(start, len, node);
    }

    /// Hint: the pages of `[addr, addr+len)` belong to `node`.
    pub fn assign_home_bytes(&mut self, addr: GAddr, len: usize, node: usize) {
        assert!(node < self.nodes);
        for p in self.heap.geometry().pages_spanned(addr, len) {
            self.homes.insert(p, NodeId(node as u16));
        }
    }
}

/// Everything a run produced: timing, breakdowns, traffic, and protocol
/// counters — the raw material for every table and figure in the paper.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which protocol ran.
    pub protocol: ProtocolName,
    /// How many nodes.
    pub nodes: usize,
    /// Machine-level outcome: total time, per-node breakdowns, traffic.
    pub outcome: RunOutcome,
    /// Protocol-level counters and barrier marks.
    pub counters: ProtocolReport,
    /// Application (shared-data) bytes allocated.
    pub app_bytes: u64,
    /// Pages in the shared address space.
    pub num_pages: u32,
    /// Structured protocol errors (empty on a clean run).
    pub errors: Vec<ProtocolError>,
    /// Every retransmission the reliable-delivery layer performed, in
    /// event order — bit-identical across runs with the same fault seed.
    pub retransmit_trace: Vec<RetransmitEvent>,
    /// The recorded access trace (`Some` iff `config.trace.record`), ready
    /// for `svm-checker`.
    pub trace: Option<AccessTrace>,
    /// How many times the seeded bug fired (0 when `config.mutation` is
    /// `None`; checker self-tests assert it is nonzero so a mutation that
    /// never triggers cannot pass vacuously).
    pub mutation_hits: u32,
    /// What crash recovery did (all-zero when no node was declared dead).
    pub recovery: RecoveryStats,
    /// Nodes declared dead by the failure detector, in detection order
    /// (with the virtual time of each declaration). Non-empty marks a
    /// degraded run: the workload completed on the survivors.
    pub deaths: Vec<(NodeId, svm_sim::SimTime)>,
}

impl RunReport {
    /// Parallel execution time in seconds.
    pub fn secs(&self) -> f64 {
        self.outcome.total_time.as_secs_f64()
    }

    /// Speedup against a sequential time in seconds.
    pub fn speedup_vs(&self, seq_secs: f64) -> f64 {
        seq_secs / self.secs()
    }

    /// Average per-node execution-time breakdown (paper Figure 3).
    pub fn avg_breakdown(&self) -> Breakdown {
        let sum = self
            .outcome
            .breakdowns
            .iter()
            .fold(Breakdown::default(), |acc, b| acc.add(b));
        sum.div(self.outcome.breakdowns.len() as u64)
    }
}

/// A fully wired [`World`] plus the run-independent facts `run`-style
/// drivers need afterwards (the explorer reuses the exact same wiring via
/// [`build_world`], so what it checks is the shipped construction path).
pub(crate) struct BuiltWorld {
    pub(crate) world: World<SvmAgent>,
    pub(crate) geometry: Geometry,
    pub(crate) num_pages: u32,
    pub(crate) app_bytes: u64,
    /// Post-initialization image (`Some` iff `config.trace.record`).
    pub(crate) initial: Option<Vec<u8>>,
}

/// Allocate, initialize, and wire a machine for `config`: the shared build
/// phase of [`run`] and the explorer's controlled runs.
pub(crate) fn build_world<L, S, B>(config: &SvmConfig, setup: S, body: B) -> BuiltWorld
where
    L: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> L,
    B: Fn(&SvmCtx<'_>, &L) + Send + Sync + 'static,
{
    let geometry = Geometry::new(config.page_size());
    let nodes = config.nodes;
    assert!(nodes >= 1 && nodes <= u16::MAX as usize);

    let mut s = Setup::new(geometry, nodes);
    let layout = setup(&mut s);
    let Setup {
        heap,
        mut golden,
        homes,
        ..
    } = s;
    let num_pages = heap.num_pages().max(1);
    golden.resize(num_pages as usize * geometry.page_size(), 0);
    let explicit_homes: Vec<Option<NodeId>> =
        (0..num_pages).map(|p| homes.get(&p).copied()).collect();

    let caches: Vec<HandoffCell<NodeCache>> = (0..nodes)
        .map(|_| HandoffCell::new(NodeCache::new(num_pages as usize)))
        .collect();

    // The checker needs the post-initialization image; keep a copy when
    // recording (the agent consumes `golden` for first-touch/home placement).
    let initial = config.trace.record.then(|| golden.clone());

    let agent = SvmAgent::new(
        config.clone(),
        geometry,
        num_pages,
        golden,
        explicit_homes,
        caches.clone(),
    );
    let recorders = agent.recorders.clone();

    let body = Arc::new(body);
    let bodies: Vec<svm_machine::machine::AppBody<SvmAgent>> = (0..nodes)
        .map(|i| {
            let body = Arc::clone(&body);
            let layout = layout.clone();
            let cell = caches[i].clone();
            let recorder = recorders.as_ref().map(|r| r[i].clone());
            let b: svm_machine::machine::AppBody<SvmAgent> = Box::new(move |port: &AppPort| {
                let ctx = SvmCtx::new(port, cell, recorder, geometry, i, nodes);
                body(&ctx, &layout);
            });
            b
        })
        .collect();

    BuiltWorld {
        world: World::new(config.cost.clone(), agent, bodies),
        geometry,
        num_pages,
        app_bytes: heap.allocated_bytes(),
        initial,
    }
}

/// Collect the recorded trace out of a finished agent. The machine has shut
/// down (or, for the explorer, is quiescent with every application thread
/// gone), so the recorder handles are exclusive.
pub(crate) fn collect_trace(
    agent: &mut SvmAgent,
    nodes: usize,
    geometry: Geometry,
    num_pages: u32,
    initial: Option<Vec<u8>>,
) -> Option<AccessTrace> {
    agent.recorders.take().map(|recs| AccessTrace {
        nodes,
        page_size: geometry.page_size(),
        num_pages,
        initial: initial.expect("initial image kept when recording"),
        events: recs
            .iter()
            .map(|cell| {
                // SAFETY: the run is over; no other reference exists.
                unsafe { cell.get_mut() }.finish()
            })
            .collect(),
    })
}

/// Run `body` on every node of a fresh machine under `config`.
///
/// `setup` allocates and initializes the shared data and returns the layout
/// (plain data cloned to every node); `body` is the per-node program.
///
/// # Panics
///
/// Panics if the application panics on any node or the protocol deadlocks
/// (with diagnostics from the machine layer).
pub fn run<L, S, B>(config: &SvmConfig, setup: S, body: B) -> RunReport
where
    L: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> L,
    B: Fn(&SvmCtx<'_>, &L) + Send + Sync + 'static,
{
    let nodes = config.nodes;
    let BuiltWorld {
        mut world,
        geometry,
        num_pages,
        app_bytes,
        initial,
    } = build_world(config, setup, body);
    world.machine.set_faults(svm_machine::NetFaultConfig {
        seed: config.fault.seed,
        drop_rate: config.fault.drop_rate,
        dup_rate: config.fault.dup_rate,
        delay_rate: config.fault.delay_rate,
        max_extra_delay: svm_sim::SimDuration::from_micros(config.fault.max_extra_delay_us),
        stall_rate: config.fault.stall_rate,
        max_stall: svm_sim::SimDuration::from_micros(config.fault.max_stall_us),
        only_link: None,
    });
    world.machine.set_node_faults(config.node_fault.clone());
    let (outcome, mut agent) = world.run();

    // Sanity: the protocols must leave no dangling fault state. (Open
    // intervals at exit are fine: nothing synchronizes after the end.) A
    // halted run is exempt — it stopped mid-flight by design — and so is a
    // node that died mid-fault, declared or not (a victim crashing after
    // its last barrier can miss detection before the survivors finish):
    // its page fetch legitimately never resolves.
    if outcome.is_clean() {
        for (i, n) in agent.nodes_st.iter().enumerate() {
            let crashable =
                !agent.recovery.alive[i] || config.node_fault.crashes.iter().any(|c| c.node == i);
            assert!(
                n.fault.is_none() || crashable,
                "node {i} finished with an outstanding fault"
            );
        }
    }

    let trace = collect_trace(&mut agent, nodes, geometry, num_pages, initial);

    RunReport {
        protocol: config.protocol,
        nodes,
        outcome,
        counters: ProtocolReport {
            nodes: agent.counters,
            barrier_marks: agent.barrier_marks,
        },
        app_bytes,
        num_pages,
        errors: std::mem::take(&mut agent.errors),
        retransmit_trace: std::mem::take(&mut agent.net.trace),
        trace,
        mutation_hits: agent.mutation.hits,
        recovery: agent.recovery.stats.clone(),
        deaths: std::mem::take(&mut agent.recovery.deaths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm_mem::Geometry;

    #[test]
    fn setup_alloc_and_init_roundtrip() {
        let mut s = Setup::new(Geometry::new(4096), 4);
        let a = s.alloc_array::<f64>(100, "a");
        let b = s.alloc_array_pages::<u32>(10, "b");
        assert_eq!(a.len(), 100);
        s.init(&a, 7, 2.5);
        s.init(&b, 3, 42);
        assert_eq!(s.init_read(&a, 7), 2.5);
        assert_eq!(s.init_read(&a, 8), 0.0, "untouched elements are zero");
        assert_eq!(s.init_read(&b, 3), 42u32);
        assert_eq!(b.addr(0).0 % 4096, 0, "page allocation is page-aligned");
    }

    #[test]
    fn setup_init_from_fills_whole_array() {
        let mut s = Setup::new(Geometry::new(4096), 2);
        let a = s.alloc_array::<u64>(5, "a");
        s.init_from(&a, &[1, 2, 3, 4, 5]);
        for i in 0..5 {
            assert_eq!(s.init_read(&a, i), (i + 1) as u64);
        }
    }

    #[test]
    fn setup_home_hints_land_on_pages() {
        let mut s = Setup::new(Geometry::new(4096), 4);
        let a = s.alloc_array_pages::<u64>(1024, "a"); // 2 pages
        s.assign_home(&a, 0..512, 1);
        s.assign_home(&a, 512..1024, 3);
        let p0 = s.heap.geometry().page_of(a.addr(0));
        let p1 = s.heap.geometry().page_of(a.addr(512));
        assert_eq!(s.homes.get(&p0.0), Some(&NodeId(1)));
        assert_eq!(s.homes.get(&p1.0), Some(&NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn setup_rejects_out_of_range_home() {
        let mut s = Setup::new(Geometry::new(4096), 2);
        let a = s.alloc_array::<u64>(8, "a");
        s.assign_home(&a, 0..8, 5);
    }
}
