//! The application programming interface (paper Section 3.2).
//!
//! Programs see the Splash-2 model: globally shared memory allocated with
//! `G_MALLOC` (here: [`crate::runner::Setup`]), and `LOCK` / `UNLOCK` /
//! `BARRIER` synchronization. A program runs one [`SvmCtx`] per node.
//!
//! ## The access fast path
//!
//! Every shared read/write consults a node-local *mapping cache* (one slot
//! per page: a raw pointer into the node's current page copy plus a
//! writability bit). Hits touch memory directly — no simulation kernel round
//! trip, mirroring how real SVM systems touch mapped pages at memory speed.
//! Misses and permission upgrades issue a `Fault` request, which runs the
//! full protocol with its modeled costs. The kernel revokes and downgrades
//! cache entries when the protocol invalidates pages or closes intervals;
//! the strict kernel/process alternation (see `svm-sim`) makes the shared
//! cache sound.

use svm_machine::{AppRequest, AppResponse};
use svm_mem::{GAddr, Geometry};
use svm_sim::process::ProcessPort;
use svm_sim::{HandoffCell, SimDuration, SimTime};

use crate::msg::{SvmReq, SvmResp};
use crate::trace::NodeRecorder;

/// A lock identifier. Locks are created implicitly on first use; their
/// managers are assigned round-robin by id (paper Section 3.5).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// A barrier identifier. All nodes must enter the same barriers in the same
/// order (Splash-2 global barriers).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BarrierId(pub u32);

/// One mapping-cache entry: where this node's copy of a page lives and
/// whether it may be written.
#[derive(Copy, Clone, Debug)]
pub struct Mapping {
    /// Pointer into the node's `PageBuf` for the page.
    pub ptr: *mut u8,
    /// Whether writes are currently permitted.
    pub writable: bool,
}

/// The per-node mapping cache, shared between the application thread (fast
/// path) and the protocol agent (installs, downgrades, revocations).
pub struct NodeCache {
    /// One slot per page of the shared address space.
    pub slots: Vec<Option<Mapping>>,
}

// SAFETY: `Mapping` holds a raw pointer into a `PageBuf` whose storage is
// stable and whose bytes sit in `UnsafeCell`s. The cache itself is only
// accessed under the `HandoffCell` contract (strict kernel/process
// alternation), so sending it across the kernel/app thread boundary is
// sound.
unsafe impl Send for NodeCache {}

impl NodeCache {
    /// An empty cache for an address space of `num_pages` pages.
    pub fn new(num_pages: usize) -> Self {
        NodeCache {
            slots: vec![None; num_pages],
        }
    }
}

/// The port type applications communicate over.
pub type AppPort = ProcessPort<AppRequest<SvmReq>, AppResponse<SvmResp>>;

/// A node's view of the shared-memory system: the handle application code
/// programs against.
pub struct SvmCtx<'a> {
    port: &'a AppPort,
    cache: HandoffCell<NodeCache>,
    recorder: Option<HandoffCell<NodeRecorder>>,
    geometry: Geometry,
    node: usize,
    nodes: usize,
}

impl<'a> SvmCtx<'a> {
    /// Assemble a context (called by the runner's per-node glue).
    /// `recorder` is the node's trace recorder when the run records an
    /// access trace (shared with the agent under the same `HandoffCell`
    /// contract as the mapping cache).
    pub fn new(
        port: &'a AppPort,
        cache: HandoffCell<NodeCache>,
        recorder: Option<HandoffCell<NodeRecorder>>,
        geometry: Geometry,
        node: usize,
        nodes: usize,
    ) -> Self {
        SvmCtx {
            port,
            cache,
            recorder,
            geometry,
            node,
            nodes,
        }
    }

    /// Run `f` against this node's recorder, if the run is recording.
    fn record(&self, f: impl FnOnce(&mut NodeRecorder)) {
        if let Some(rec) = &self.recorder {
            // SAFETY: the application thread runs only between a resume and
            // its next request; the kernel is parked, so this is the only
            // live reference (HandoffCell contract, as for the cache).
            f(unsafe { rec.get_mut() });
        }
    }

    /// This node's id (0-based).
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of nodes in the run.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The page geometry of the shared address space.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Charge `d` of application computation (occupies the compute
    /// processor; preemptible by protocol service).
    pub fn compute(&self, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        match self.port.request(AppRequest::Compute(d)) {
            AppResponse::Done => {}
            AppResponse::Custom(_) => unreachable!("compute answered with custom response"),
        }
    }

    /// Charge `ns` nanoseconds of computation.
    pub fn compute_ns(&self, ns: u64) {
        self.compute(SimDuration::from_nanos(ns));
    }

    /// Charge `us` microseconds of computation.
    pub fn compute_us(&self, us: u64) {
        self.compute(SimDuration::from_micros(us));
    }

    /// Acquire a lock (paper: `LOCK`).
    pub fn lock(&self, l: LockId) {
        self.request(SvmReq::Lock(l));
    }

    /// Release a lock (paper: `UNLOCK`).
    pub fn unlock(&self, l: LockId) {
        self.request(SvmReq::Unlock(l));
    }

    /// Enter a global barrier (paper: `BARRIER`).
    pub fn barrier(&self, b: BarrierId) {
        self.request(SvmReq::Barrier(b));
    }

    /// The current virtual time. Serviced immediately with zero modeled
    /// cost: reading the clock never perturbs the protocol schedule, so
    /// runs with and without timestamping are bit-identical in virtual
    /// time. Request-driven workloads use it to timestamp operations.
    pub fn now(&self) -> SimTime {
        match self.port.request(AppRequest::Custom(SvmReq::Clock)) {
            AppResponse::Custom(SvmResp::Time(t)) => t,
            AppResponse::Done => unreachable!("clock request answered without a timestamp"),
        }
    }

    /// Park this node's application until virtual time `until` (returns
    /// immediately if the deadline already passed). The wait is accounted
    /// as idle time; the node's protocol layer keeps serving remote
    /// requests while the application sleeps.
    pub fn sleep_until(&self, until: SimTime) {
        self.request(SvmReq::SleepUntil { until });
    }

    /// Park this node's application for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        self.sleep_until(self.now() + d);
    }

    /// Park this node's application for `us` virtual microseconds.
    pub fn sleep_us(&self, us: u64) {
        self.sleep(SimDuration::from_micros(us));
    }

    fn request(&self, req: SvmReq) {
        match self.port.request(AppRequest::Custom(req)) {
            AppResponse::Done => {}
            AppResponse::Custom(SvmResp::Time(_)) => {
                unreachable!("timestamp response to a non-clock request")
            }
        }
    }

    /// Resolve a page mapping with the required rights, faulting as needed.
    fn mapping(&self, page: u32, write: bool) -> *mut u8 {
        for attempt in 0..8 {
            {
                // SAFETY: the application thread runs only between a resume
                // and its next request; the kernel is parked, so we hold the
                // only live reference into the cache (HandoffCell contract).
                let cache = unsafe { self.cache.get_mut() };
                if let Some(m) = &cache.slots[page as usize] {
                    if !write || m.writable {
                        return m.ptr;
                    }
                }
            }
            // Miss or insufficient rights: run the fault protocol. The
            // kernel installs the mapping before completing the request.
            self.request(SvmReq::Fault {
                page: svm_mem::PageNum(page),
                write,
            });
            debug_assert!(attempt < 7, "fault did not install a usable mapping");
        }
        // Out of retries: report a structured protocol error. The request
        // halts the run and never completes; the kernel tears this thread
        // down during shutdown.
        self.request(SvmReq::MapFailed {
            page: svm_mem::PageNum(page),
        });
        unreachable!("MapFailed request completed on node {}", self.node);
    }

    /// Read `out.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: GAddr, out: &mut [u8]) {
        self.access_bytes(addr, out.len(), false, |page, ptr, off, done, len| {
            // SAFETY: `ptr` maps a live page copy; `off + len` is within the
            // page (access_bytes splits at page boundaries); the kernel is
            // parked, so no concurrent access exists.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    ptr.add(off),
                    out[done..done + len].as_mut_ptr(),
                    len,
                );
            }
            self.record(|r| r.read(page, off as u32, &out[done..done + len]));
        });
    }

    /// Write `src` starting at `addr`.
    pub fn write_bytes(&self, addr: GAddr, src: &[u8]) {
        self.access_bytes(addr, src.len(), true, |page, ptr, off, done, len| {
            // SAFETY: as in `read_bytes`, within-page and exclusive.
            unsafe {
                std::ptr::copy_nonoverlapping(src[done..done + len].as_ptr(), ptr.add(off), len);
            }
            self.record(|r| r.write(page, off as u32, &src[done..done + len]));
        });
    }

    /// Split `[addr, addr+len)` into per-page chunks and run `f(page,
    /// page_ptr, offset_in_page, bytes_done_so_far, chunk_len)` for each.
    fn access_bytes(
        &self,
        addr: GAddr,
        len: usize,
        write: bool,
        mut f: impl FnMut(u32, *mut u8, usize, usize, usize),
    ) {
        let ps = self.geometry.page_size();
        let mut a = addr;
        let mut done = 0usize;
        while done < len {
            let page = self.geometry.page_of(a);
            let off = self.geometry.offset_in_page(a);
            let chunk = (len - done).min(ps - off);
            let ptr = self.mapping(page.0, write);
            f(page.0, ptr, off, done, chunk);
            a = a + chunk as u64;
            done += chunk;
        }
    }

    /// Read a scalar at `addr` (must not cross a page boundary — guaranteed
    /// for naturally aligned allocations).
    pub fn read<T: Scalar>(&self, addr: GAddr) -> T {
        let off = self.geometry.offset_in_page(addr);
        debug_assert!(
            off + std::mem::size_of::<T>() <= self.geometry.page_size(),
            "scalar access crosses a page boundary (misaligned address {addr:?})"
        );
        let page = self.geometry.page_of(addr).0;
        let ptr = self.mapping(page, false);
        let mut raw = [0u8; 8];
        // SAFETY: within-page (asserted), mapped, exclusive (kernel parked).
        unsafe {
            std::ptr::copy_nonoverlapping(ptr.add(off), raw.as_mut_ptr(), std::mem::size_of::<T>());
        }
        self.record(|r| r.read(page, off as u32, &raw[..std::mem::size_of::<T>()]));
        T::from_raw(raw)
    }

    /// Write a scalar at `addr` (same alignment contract as [`SvmCtx::read`]).
    pub fn write<T: Scalar>(&self, addr: GAddr, v: T) {
        let off = self.geometry.offset_in_page(addr);
        debug_assert!(off + std::mem::size_of::<T>() <= self.geometry.page_size());
        let page = self.geometry.page_of(addr).0;
        let ptr = self.mapping(page, true);
        let raw = v.to_raw();
        // SAFETY: within-page (asserted), mapped writable, exclusive.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), ptr.add(off), std::mem::size_of::<T>());
        }
        self.record(|r| r.write(page, off as u32, &raw[..std::mem::size_of::<T>()]));
    }
}

/// Plain scalars storable in shared memory (little-endian).
pub trait Scalar: Copy {
    /// Decode from the first `size_of::<Self>()` bytes of `raw`.
    fn from_raw(raw: [u8; 8]) -> Self;
    /// Encode into up to 8 bytes.
    fn to_raw(self) -> [u8; 8];
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            fn from_raw(raw: [u8; 8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&raw[..std::mem::size_of::<$t>()]);
                <$t>::from_le_bytes(b)
            }
            fn to_raw(self) -> [u8; 8] {
                let mut raw = [0u8; 8];
                raw[..std::mem::size_of::<$t>()].copy_from_slice(&self.to_le_bytes());
                raw
            }
        }
    )*};
}

impl_scalar!(f64, f32, u64, i64, u32, i32, u16, u8);

/// A typed view of a shared array: a base address plus an element count.
///
/// `SharedArr` is plain data — clone it into every node's program. All
/// access goes through an [`SvmCtx`].
#[derive(Debug)]
pub struct SharedArr<T> {
    base: GAddr,
    len: usize,
    _elem: std::marker::PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound on `T: Clone/Copy`, which is not
// needed for a phantom-typed address range.
impl<T> Clone for SharedArr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedArr<T> {}

impl<T: Scalar> SharedArr<T> {
    /// Wrap a base address and length (normally produced by `Setup`).
    pub fn from_raw(base: GAddr, len: usize) -> Self {
        SharedArr {
            base,
            len,
            _elem: std::marker::PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    pub fn addr(&self, i: usize) -> GAddr {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + (i * std::mem::size_of::<T>()) as u64
    }

    /// Read element `i`.
    pub fn get(&self, ctx: &SvmCtx<'_>, i: usize) -> T {
        ctx.read(self.addr(i))
    }

    /// Write element `i`.
    pub fn set(&self, ctx: &SvmCtx<'_>, i: usize, v: T) {
        ctx.write(self.addr(i), v);
    }

    /// Bulk-read `[start, start+out.len())` into `out`.
    ///
    /// Copies page-sized chunks at memory speed (one mapping check per
    /// page), which is what makes coarse-grained application loops cheap to
    /// simulate — exactly like touching a mapped page on real hardware.
    pub fn read_into(&self, ctx: &SvmCtx<'_>, start: usize, out: &mut [T]) {
        debug_assert!(start + out.len() <= self.len);
        if out.is_empty() {
            return;
        }
        // SAFETY: `T: Scalar` types are plain little-endian numerics with no
        // padding or invalid bit patterns; viewing the slice as bytes (and
        // filling it from page memory) is sound on the little-endian targets
        // this simulator supports.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut u8, std::mem::size_of_val(out))
        };
        ctx.read_bytes(self.addr(start), bytes);
    }

    /// Bulk-write `src` to `[start, start+src.len())` (page-chunked; see
    /// [`SharedArr::read_into`]).
    pub fn write_from(&self, ctx: &SvmCtx<'_>, start: usize, src: &[T]) {
        debug_assert!(start + src.len() <= self.len);
        if src.is_empty() {
            return;
        }
        // SAFETY: as in `read_into`; reading the source slice as bytes.
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        ctx.write_bytes(self.addr(start), bytes);
    }
}
