//! Explore-mode support: canonical state digests, per-state invariants,
//! enabled-action enumeration, and the controlled-run entry that the
//! `svm-explore` model checker drives.
//!
//! The explorer (DESIGN.md §16) replays programs through the *shipped*
//! wiring — [`run_explored`] builds its world with the exact construction
//! path [`crate::runner::run`] uses — while `svm-machine`'s explore mode
//! parks every cross-node send and timer so that "what arrives next"
//! becomes an explicit controller choice at each quiescent point.
//!
//! Everything here is deterministic and time-erased: the canonical digest
//! of a quiescent state covers all discrete protocol, machine, and
//! application-observation state but never a `SimTime`/`SimDuration`, so
//! two interleavings that made the applications observe the same histories
//! and left the protocol in the same configuration hash equal — that
//! equality is what makes visited-set pruning sound (equal digest implies
//! equal reachable futures; the recorder streams pin the application side,
//! the protocol fields pin the agent side, and the hold pool pins every
//! in-flight message).

use std::collections::BTreeMap;

use svm_machine::{AppPhase, ExploreStep, NodeId, ProcAddr, RunOutcome, World};

use crate::api::SvmCtx;
use crate::config::SvmConfig;
use crate::msg::{DiffPacket, IntervalRec, SvmMsg};
use crate::protocol::reliable::Wire;
use crate::protocol::state::{FaultStage, TokenState};
use crate::protocol::tokens;
use crate::protocol::{ProtocolError, SvmAgent};
use crate::runner::{build_world, collect_trace, BuiltWorld, Setup};
use crate::trace::{fnv1a64, AccessTrace, FNV_BASIS};
use crate::vt::VectorTime;
use svm_mem::{Access, Diff};

/// A running FNV-1a fold with typed feeders (every integer is hashed as
/// 8 little-endian bytes so adjacent fields cannot alias).
pub struct Digest {
    h: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// Start from the FNV basis.
    pub fn new() -> Self {
        Digest { h: FNV_BASIS }
    }

    /// Fold raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.h = fnv1a64(self.h, b);
    }

    /// Fold one 64-bit word.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a boolean.
    pub fn flag(&mut self, v: bool) {
        self.u64(v as u64);
    }

    /// Fold a vector time.
    pub fn vt(&mut self, vt: &VectorTime) {
        self.h = vt.fold_digest(self.h);
    }

    /// The folded value.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

fn digest_addr(d: &mut Digest, a: ProcAddr) {
    d.u64(a.node.0 as u64);
    d.u64(matches!(a.kind, svm_machine::ProcKind::CoProc) as u64);
}

fn digest_diff(d: &mut Digest, diff: &Diff) {
    d.u64(diff.run_count() as u64);
    for r in diff.runs() {
        d.u64(r.offset as u64);
        d.u64(r.bytes.len() as u64);
        d.bytes(r.bytes);
    }
}

fn digest_rec(d: &mut Digest, r: &IntervalRec) {
    d.u64(r.writer.0 as u64);
    d.u64(r.interval as u64);
    d.vt(&r.vt);
    d.u64(r.pages.len() as u64);
    for p in &r.pages {
        d.u64(p.0 as u64);
    }
}

fn digest_packet(d: &mut Digest, p: &DiffPacket) {
    d.u64(p.writer.0 as u64);
    d.u64(p.interval as u64);
    d.vt(&p.vt);
    digest_diff(d, &p.diff);
}

/// Fold a protocol message, every content field included.
pub fn digest_msg(d: &mut Digest, msg: &SvmMsg) {
    match msg {
        SvmMsg::LockRequest {
            lock,
            requester,
            vt,
        } => {
            d.u64(1);
            d.u64(lock.0 as u64);
            d.u64(requester.0 as u64);
            d.vt(vt);
        }
        SvmMsg::LockForward {
            lock,
            requester,
            vt,
        } => {
            d.u64(2);
            d.u64(lock.0 as u64);
            d.u64(requester.0 as u64);
            d.vt(vt);
        }
        SvmMsg::LockGrant { lock, vt, records } => {
            d.u64(3);
            d.u64(lock.0 as u64);
            d.vt(vt);
            d.u64(records.len() as u64);
            for r in records {
                digest_rec(d, r);
            }
        }
        SvmMsg::BarrierArrive {
            barrier,
            node,
            vt,
            records,
            proto_mem,
        } => {
            d.u64(4);
            d.u64(barrier.0 as u64);
            d.u64(node.0 as u64);
            d.vt(vt);
            d.u64(records.len() as u64);
            for r in records {
                digest_rec(d, r);
            }
            d.u64(*proto_mem);
        }
        SvmMsg::BarrierRelease {
            barrier,
            vt,
            records,
            gc,
        } => {
            d.u64(5);
            d.u64(barrier.0 as u64);
            d.vt(vt);
            d.u64(records.len() as u64);
            for r in records {
                digest_rec(d, r);
            }
            d.flag(*gc);
        }
        SvmMsg::DiffRequest {
            page,
            requester,
            writer,
            from_excl,
            to_incl,
        } => {
            d.u64(6);
            d.u64(page.0 as u64);
            d.u64(requester.0 as u64);
            d.u64(writer.0 as u64);
            d.u64(*from_excl as u64);
            d.u64(*to_incl as u64);
        }
        SvmMsg::DiffReply { page, diffs } => {
            d.u64(7);
            d.u64(page.0 as u64);
            d.u64(diffs.len() as u64);
            for p in diffs {
                digest_packet(d, p);
            }
        }
        SvmMsg::PageRequest { page, requester } => {
            d.u64(8);
            d.u64(page.0 as u64);
            d.u64(requester.0 as u64);
        }
        SvmMsg::PageReply {
            page,
            data,
            applied,
        } => {
            d.u64(9);
            d.u64(page.0 as u64);
            d.bytes(data);
            d.u64(applied.len() as u64);
            for (n, i) in applied {
                d.u64(n.0 as u64);
                d.u64(*i as u64);
            }
        }
        SvmMsg::DiffFlush {
            page,
            writer,
            interval,
            diff,
        } => {
            d.u64(10);
            d.u64(page.0 as u64);
            d.u64(writer.0 as u64);
            d.u64(*interval as u64);
            digest_diff(d, diff);
        }
        SvmMsg::HomeRequest {
            page,
            requester,
            need,
        } => {
            d.u64(11);
            d.u64(page.0 as u64);
            d.u64(requester.0 as u64);
            d.u64(need.len() as u64);
            for (n, i) in need {
                d.u64(n.0 as u64);
                d.u64(*i as u64);
            }
        }
        SvmMsg::HomeReply {
            page,
            data,
            applied,
        } => {
            d.u64(12);
            d.u64(page.0 as u64);
            d.bytes(data);
            d.u64(applied.len() as u64);
            for (n, i) in applied {
                d.u64(n.0 as u64);
                d.u64(*i as u64);
            }
        }
        SvmMsg::NodeDown { dead } => {
            d.u64(13);
            d.u64(dead.0 as u64);
        }
        SvmMsg::DiffTask {
            interval,
            vt,
            items,
        } => {
            d.u64(14);
            d.u64(*interval as u64);
            d.vt(vt);
            d.u64(items.len() as u64);
            for (p, diff) in items {
                d.u64(p.0 as u64);
                digest_diff(d, diff);
            }
        }
    }
}

/// Fold a wire envelope.
pub fn digest_wire(d: &mut Digest, wire: &Wire) {
    match wire {
        Wire::Plain(m) => {
            d.u64(21);
            digest_msg(d, m);
        }
        Wire::Data { seq, msg } => {
            d.u64(22);
            d.u64(*seq as u64);
            digest_msg(d, msg);
        }
        Wire::Ack { cum } => {
            d.u64(23);
            d.u64(*cum as u64);
        }
        Wire::Heartbeat => d.u64(24),
    }
}

fn digest_agent(d: &mut Digest, agent: &SvmAgent) {
    // Per-node protocol state.
    for n in &agent.nodes_st {
        d.vt(&n.vt);
        d.u64(n.dirty.len() as u64);
        for p in &n.dirty {
            d.u64(p.0 as u64);
        }
        for ps in &n.pages {
            d.u64(match ps.access {
                Access::Invalid => 0,
                Access::ReadOnly => 1,
                Access::ReadWrite => 2,
            });
            match &ps.buf {
                None => d.flag(false),
                Some(buf) => {
                    d.flag(true);
                    // SAFETY: digests run at explore quiescent points (or
                    // after shutdown): every application thread is parked
                    // in its rendezvous (or gone), so the kernel thread has
                    // exclusive access to the page bytes.
                    d.bytes(unsafe { buf.bytes() });
                }
            }
            match &ps.twin {
                None => d.flag(false),
                Some(t) => {
                    d.flag(true);
                    d.bytes(t);
                }
            }
            for (w, i) in ps.seen.iter() {
                d.u64(w.0 as u64);
                d.u64(i as u64);
            }
            d.u64(u64::MAX); // seen/applied separator
            for (w, i) in ps.applied.iter() {
                d.u64(w.0 as u64);
                d.u64(i as u64);
            }
            d.flag(ps.home_stale);
            d.u64(ps.waiting_fetches.len() as u64);
            for (req, need) in &ps.waiting_fetches {
                d.u64(req.0 as u64);
                d.u64(need.len() as u64);
                for (n2, i) in need {
                    d.u64(n2.0 as u64);
                    d.u64(*i as u64);
                }
            }
            d.flag(ps.local_waiter);
        }
        d.u64(n.log.len() as u64);
        for (&(w, i), rec) in &n.log {
            d.u64(w as u64);
            d.u64(i as u64);
            digest_rec(d, rec);
        }
        d.u64(n.diff_store.len() as u64);
        for (&page, diffs) in &n.diff_store {
            d.u64(page as u64);
            d.u64(diffs.len() as u64);
            for sd in diffs {
                d.u64(sd.interval as u64);
                d.vt(&sd.vt);
                digest_diff(d, &sd.diff);
            }
        }
        d.u64(n.locks.len() as u64);
        for (&l, ls) in &n.locks {
            d.u64(l as u64);
            d.u64(match ls.token {
                TokenState::Absent => 0,
                TokenState::HeldFree => 1,
                TokenState::InCs => 2,
            });
            d.u64(ls.waiters.len() as u64);
            for (w, vt) in &ls.waiters {
                d.u64(w.0 as u64);
                d.vt(vt);
            }
            d.u64(ls.early_forwards.len() as u64);
            for (w, vt) in &ls.early_forwards {
                d.u64(w.0 as u64);
                d.vt(vt);
            }
            d.flag(ls.local_pending);
        }
        match &n.fault {
            None => d.flag(false),
            Some(f) => {
                d.flag(true);
                d.u64(f.page.0 as u64);
                d.flag(f.write);
                match &f.stage {
                    FaultStage::AwaitHome => d.u64(1),
                    FaultStage::AwaitPage => d.u64(2),
                    FaultStage::AwaitDiffs { outstanding, stash } => {
                        d.u64(3);
                        d.u64(*outstanding as u64);
                        d.u64(stash.len() as u64);
                        for p in stash {
                            digest_packet(d, p);
                        }
                    }
                    FaultStage::AwaitHomeDiffs => d.u64(4),
                }
            }
        }
        d.vt(&n.last_barrier_vt);
        d.u64(n.parked_diff_requests.len() as u64);
        for (p, req, w, lo, hi) in &n.parked_diff_requests {
            d.u64(p.0 as u64);
            d.u64(req.0 as u64);
            d.u64(w.0 as u64);
            d.u64(*lo as u64);
            d.u64(*hi as u64);
        }
        d.u64(n.pending_diffs.len() as u64);
        for &(p, i) in &n.pending_diffs {
            d.u64(p as u64);
            d.u64(i as u64);
        }
    }

    // Directory, lock managers, barrier manager.
    for e in &agent.dir {
        match e.home {
            None => d.flag(false),
            Some(h) => {
                d.flag(true);
                d.u64(h.0 as u64);
            }
        }
        d.u64(e.validator.0 as u64);
    }
    d.u64(agent.lock_mgr.len() as u64);
    for (&l, m) in &agent.lock_mgr {
        d.u64(l as u64);
        d.u64(m.tail.0 as u64);
    }
    let b = &agent.barrier;
    d.u64(b.seq);
    match b.current {
        None => d.flag(false),
        Some(id) => {
            d.flag(true);
            d.u64(id.0 as u64);
        }
    }
    for a in &b.arrived {
        match a {
            None => d.flag(false),
            Some(vt) => {
                d.flag(true);
                d.vt(vt);
            }
        }
    }
    d.u64(b.count as u64);
    d.flag(b.gc_wanted);
    d.u64(b.archive.len() as u64);
    for (&(w, i), rec) in &b.archive {
        d.u64(w as u64);
        d.u64(i as u64);
        digest_rec(d, rec);
    }

    // Recording bookkeeping that feeds behavior (global lock sequence
    // numbers) and the mutation counters that gate nth-occurrence seeded
    // bugs.
    d.u64(agent.lock_seqs.next.len() as u64);
    for (&l, &s) in &agent.lock_seqs.next {
        d.u64(l as u64);
        d.u64(s);
    }
    d.u64(agent.lock_seqs.held.len() as u64);
    for (&(n, l), &s) in &agent.lock_seqs.held {
        d.u64(n as u64);
        d.u64(l as u64);
        d.u64(s);
    }
    d.u64(agent.mutation.diff_applies as u64);
    d.u64(agent.mutation.interval_closes as u64);
    d.u64(agent.mutation.lock_grants as u64);
    d.u64(agent.mutation.hits as u64);

    // Structured errors (a state that has erred is never equal to one that
    // has not).
    d.u64(agent.errors.len() as u64);
    for e in &agent.errors {
        d.bytes(format!("{e:?}").as_bytes());
    }

    // Recovery: the discrete fields only (last-heard clocks and stats are
    // time/accounting).
    for &a in &agent.recovery.alive {
        d.flag(a);
    }
    d.u64(agent.recovery.deaths.len() as u64);
    for (n, _) in &agent.recovery.deaths {
        d.u64(n.0 as u64);
    }
    d.u64(agent.recovery.pending_flushes.len() as u64);
    for (p, w, i, diff) in &agent.recovery.pending_flushes {
        d.u64(p.0 as u64);
        d.u64(w.0 as u64);
        d.u64(*i as u64);
        digest_diff(d, diff);
    }
    d.u64(agent.recovery.pending_arrivals.len() as u64);
    for m in &agent.recovery.pending_arrivals {
        digest_msg(d, m);
    }
    d.u64(agent.recovery.lost_grants.len() as u64);
    for (&l, (vt, records)) in &agent.recovery.lost_grants {
        d.u64(l as u64);
        d.vt(vt);
        d.u64(records.len() as u64);
        for r in records {
            d.u64(r.writer.0 as u64);
            d.u64(r.interval as u64);
        }
    }
    d.u64(agent.recovery.orphaned_acquires.len() as u64);
    for (l, n, vt) in &agent.recovery.orphaned_acquires {
        d.u64(*l as u64);
        d.u64(n.0 as u64);
        d.vt(vt);
    }
    d.u64(agent.recovery.refetch.len() as u64);
    for (n, p) in &agent.recovery.refetch {
        d.u64(n.0 as u64);
        d.u64(p.0 as u64);
    }

    // Reliable layer, keyed canonically by (from, to) — never by channel
    // index or raw retransmit token, both of which depend on the order
    // channels/timers were first used and would split states that behave
    // identically.
    d.flag(agent.net.enabled);
    d.u64(agent.net.index.len() as u64);
    for (&(from, to), &idx) in &agent.net.index {
        let ch = &agent.net.chans[idx];
        digest_addr(d, from);
        digest_addr(d, to);
        d.u64(ch.next_seq as u64);
        d.u64(ch.unacked.len() as u64);
        for (&seq, m) in &ch.unacked {
            d.u64(seq as u64);
            digest_msg(d, m);
        }
        d.flag(ch.armed.is_some());
        d.u64(ch.backoff as u64);
        d.u64(ch.attempts as u64);
    }
    d.u64(agent.net.recv.len() as u64);
    for (&(from, to), rc) in &agent.net.recv {
        digest_addr(d, from);
        digest_addr(d, to);
        d.u64(rc.next_expected as u64);
        d.u64(rc.buffered.len() as u64);
        for (&seq, m) in &rc.buffered {
            d.u64(seq as u64);
            digest_msg(d, m);
        }
    }
}

/// Canonical, time-erased digest of a quiescent explore state: protocol
/// agent, machine hold pool and application phases, and the per-node
/// recorder streams (what each application has observed so far).
pub fn state_digest(world: &World<SvmAgent>) -> u64 {
    let agent = &world.agent;
    let m = &world.machine;
    let mut d = Digest::new();
    digest_agent(&mut d, agent);

    // Application phases and monotone progress.
    for i in 0..agent.cfg.nodes {
        let node = NodeId(i as u16);
        match m.app_phase(node) {
            AppPhase::Running => d.u64(31),
            AppPhase::Blocked(c) => {
                d.u64(32);
                d.bytes(format!("{c}").as_bytes());
            }
            AppPhase::Finished => d.u64(33),
            AppPhase::Crashed => d.u64(34),
        }
    }
    for &p in m.progress_counts() {
        d.u64(p);
    }

    // The hold pool as a multiset: per-delivery digests sorted before
    // folding, because the pool's Vec order is push (history) order and
    // two commuting interleavings must still hash equal.
    let mut held: Vec<u64> = m
        .held_deliveries()
        .iter()
        .map(|h| {
            let mut hd = Digest::new();
            digest_addr(&mut hd, h.from);
            digest_addr(&mut hd, h.to);
            hd.u64(h.channel_seq);
            digest_wire(&mut hd, &h.msg);
            hd.finish()
        })
        .collect();
    held.sort_unstable();
    d.u64(held.len() as u64);
    for h in held {
        d.u64(h);
    }

    // Parked timers, with retransmit tokens erased to their channel (the
    // allocator's counter is shared across channels, so raw values encode
    // arm order — history, not state).
    let rev: BTreeMap<usize, (ProcAddr, ProcAddr)> =
        agent.net.index.iter().map(|(&k, &v)| (v, k)).collect();
    let mut timers: Vec<u64> = m
        .held_timers()
        .iter()
        .map(|&(at, token)| {
            let mut td = Digest::new();
            digest_addr(&mut td, at);
            if token == tokens::HB_TOKEN {
                td.u64(41);
            } else if tokens::is_sleep_token(token) {
                td.u64(42);
                td.u64(tokens::sleep_node(token).0 as u64);
            } else {
                td.u64(43);
                match agent.net.tokens.resolve(token).and_then(|i| rev.get(&i)) {
                    Some(&(from, to)) => {
                        digest_addr(&mut td, from);
                        digest_addr(&mut td, to);
                    }
                    None => td.u64(44), // disarmed but never cancelled
                }
            }
            td.finish()
        })
        .collect();
    timers.sort_unstable();
    d.u64(timers.len() as u64);
    for t in timers {
        d.u64(t);
    }

    // What each application has observed (explore runs always record).
    if let Some(recs) = &agent.recorders {
        for cell in recs {
            // SAFETY: quiescent point — every application thread is parked
            // in its rendezvous, so the recorder handle is exclusive.
            d.u64(unsafe { cell.get_mut() }.digest());
        }
    }
    d.finish()
}

/// One releasable held delivery: the FIFO head of its directed `(from,
/// to)` channel. The explorer only ever releases channel heads — the
/// protocols assume FIFO links (the reliable layer resequences per
/// channel), so same-channel overtaking is outside the modeled
/// nondeterminism.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeliveryChoice {
    /// Index into [`svm_machine::Machine::held_deliveries`] (valid until
    /// the next explore step mutates the pool).
    pub index: usize,
    /// Source processor.
    pub from: ProcAddr,
    /// Destination processor.
    pub to: ProcAddr,
    /// Channel sequence at hold time.
    pub channel_seq: u64,
    /// Stable identity of this action across replays of the same prefix
    /// (what sleep sets key on).
    pub key: u64,
}

/// The stable identity of "crash node `n`" as an explored action.
pub fn crash_key(node: NodeId) -> u64 {
    let mut d = Digest::new();
    d.u64(0xc4a5);
    d.u64(node.0 as u64);
    d.finish()
}

/// The stable identity of "detect node `n`'s crash" as an explored action.
pub fn detect_key(node: NodeId) -> u64 {
    let mut d = Digest::new();
    d.u64(0xdedc);
    d.u64(node.0 as u64);
    d.finish()
}

/// Enumerate the enabled delivery actions at a quiescent point: one per
/// nonempty channel (its FIFO head), skipping channels into crashed nodes.
pub fn enabled_deliveries(world: &World<SvmAgent>) -> Vec<DeliveryChoice> {
    let m = &world.machine;
    let mut heads: BTreeMap<(ProcAddr, ProcAddr), (usize, u64)> = BTreeMap::new();
    for (i, h) in m.held_deliveries().iter().enumerate() {
        if m.app_phase(h.to.node) == AppPhase::Crashed {
            continue;
        }
        let e = heads.entry((h.from, h.to)).or_insert((i, h.channel_seq));
        if h.channel_seq < e.1 {
            *e = (i, h.channel_seq);
        }
    }
    heads
        .into_iter()
        .map(|((from, to), (index, channel_seq))| {
            let mut d = Digest::new();
            d.u64(0xde11);
            digest_addr(&mut d, from);
            digest_addr(&mut d, to);
            d.u64(channel_seq);
            DeliveryChoice {
                index,
                from,
                to,
                channel_seq,
                key: d.finish(),
            }
        })
        .collect()
}

/// Crashed nodes whose failure detection is still pending: not yet
/// declared dead by the detector, and with their outbound backlog drained
/// (no held delivery from them to a live node — the timed system's
/// detection timeout dwarfs its network latency, so no message from a dead
/// node ever arrives after its detection). Each is an enabled `Detect`
/// action; a state with none of these and no enabled delivery is terminal.
pub fn pending_detects(world: &World<SvmAgent>) -> Vec<NodeId> {
    if !world.agent.cfg.recovery.enabled {
        return Vec::new();
    }
    let m = &world.machine;
    (0..world.agent.cfg.nodes)
        .map(|i| NodeId(i as u16))
        .filter(|&n| m.app_phase(n) == AppPhase::Crashed)
        .filter(|&n| world.agent.recovery.alive[n.index()])
        .filter(|&n| {
            !m.held_deliveries()
                .iter()
                .any(|h| h.from.node == n && m.app_phase(h.to.node) != AppPhase::Crashed)
        })
        .collect()
}

/// Nodes that have not crash-stopped.
pub fn live_nodes(world: &World<SvmAgent>) -> Vec<NodeId> {
    (0..world.agent.cfg.nodes)
        .map(|i| NodeId(i as u16))
        .filter(|&n| world.machine.app_phase(n) != AppPhase::Crashed)
        .collect()
}

/// Whether every application has either returned or crash-stopped.
pub fn all_done(world: &World<SvmAgent>) -> bool {
    (0..world.agent.cfg.nodes).all(|i| {
        matches!(
            world.machine.app_phase(NodeId(i as u16)),
            AppPhase::Finished | AppPhase::Crashed
        )
    })
}

/// Safety invariants checked at *every* quiescent state. Empty = healthy.
pub fn invariant_violations(world: &World<SvmAgent>) -> Vec<String> {
    let agent = &world.agent;
    let mut out = Vec::new();

    // Lock-token conservation: at most one *live* node holds each lock's
    // token (Absent everywhere while a grant is in flight), and at most
    // one is inside each critical section. Crash-stopped nodes are
    // excluded: their frozen state is garbage until lock repair runs.
    let mut holders: BTreeMap<u32, Vec<(usize, TokenState)>> = BTreeMap::new();
    for (i, n) in agent.nodes_st.iter().enumerate() {
        if world.machine.app_phase(NodeId(i as u16)) == AppPhase::Crashed {
            continue;
        }
        for (&l, ls) in &n.locks {
            if ls.token != TokenState::Absent {
                holders.entry(l).or_default().push((i, ls.token));
            }
        }
    }
    for (l, h) in &holders {
        if h.len() > 1 {
            out.push(format!("lock {l}: token held by {} nodes ({h:?})", h.len()));
        }
    }
    let in_cs = agent
        .lock_seqs
        .held
        .iter()
        .filter(|(&(n, _), _)| world.machine.app_phase(NodeId(n)) != AppPhase::Crashed)
        .fold(BTreeMap::<u32, Vec<u16>>::new(), |mut m, (&(n, l), _)| {
            m.entry(l).or_default().push(n);
            m
        });
    for (&l, held) in &in_cs {
        if held.len() > 1 {
            out.push(format!(
                "lock {l}: {} concurrent critical sections (nodes {held:?})",
                held.len()
            ));
        }
    }

    // Barrier-manager sanity: the arrival count matches the arrival
    // vector, never exceeds the machine, and a gathering episode exists
    // exactly while someone has arrived.
    let b = &agent.barrier;
    let arrived = b.arrived.iter().filter(|a| a.is_some()).count();
    if arrived != b.count {
        out.push(format!(
            "barrier: count {} disagrees with {} recorded arrivals",
            b.count, arrived
        ));
    }
    if b.count > agent.cfg.nodes {
        out.push(format!(
            "barrier: {} arrivals on a {}-node machine",
            b.count, agent.cfg.nodes
        ));
    }
    if b.current.is_none() && b.count != 0 {
        out.push(format!("barrier: {} arrivals but no open episode", b.count));
    }

    // Structured protocol errors are violations by definition.
    for e in &agent.errors {
        out.push(format!("protocol error: {e:?}"));
    }
    out
}

/// Invariants that additionally must hold when the controller has no
/// actions left (a terminal state): no deadlock, no orphaned messages, no
/// undelivered reliable traffic between live nodes.
pub fn terminal_violations(world: &World<SvmAgent>) -> Vec<String> {
    let agent = &world.agent;
    let m = &world.machine;
    let mut out = invariant_violations(world);

    for i in 0..agent.cfg.nodes {
        let node = NodeId(i as u16);
        match m.app_phase(node) {
            AppPhase::Finished | AppPhase::Crashed => {}
            p => out.push(format!("deadlock: node {i} ended the run in {p:?}")),
        }
    }
    for h in m.held_deliveries() {
        if m.app_phase(h.to.node) != AppPhase::Crashed {
            out.push(format!(
                "orphan message: {:?} -> {:?} never delivered",
                h.from, h.to
            ));
        }
    }
    for (&(from, to), &idx) in &agent.net.index {
        let ch = &agent.net.chans[idx];
        let both_live = m.app_phase(from.node) != AppPhase::Crashed
            && m.app_phase(to.node) != AppPhase::Crashed;
        if both_live && !ch.unacked.is_empty() {
            out.push(format!(
                "unacked traffic between live nodes {:?} -> {:?}: {} messages",
                from,
                to,
                ch.unacked.len()
            ));
        }
    }
    out
}

/// What one controlled (explore-mode) run produced.
pub struct ExploreRun {
    /// Machine-level outcome (timing is synthetic under explore mode; the
    /// `errors` list is what matters).
    pub outcome: RunOutcome,
    /// Structured protocol errors.
    pub errors: Vec<ProtocolError>,
    /// The recorded access trace (always present: explore forces
    /// recording on).
    pub trace: Option<AccessTrace>,
    /// Times the seeded bug fired.
    pub mutation_hits: u32,
    /// Nodes declared dead, in declaration order.
    pub deaths: Vec<NodeId>,
}

/// Run `body` under `config` with every scheduler choice delegated to
/// `controller` — the explorer's (and counterexample replayer's) entry.
///
/// The wiring is [`crate::runner::run`]'s own (via the shared build
/// phase), so an explored transition exercises exactly the shipped
/// handler code. Recording is forced on: the digests and the terminal
/// trace-checker oracle both need the recorder streams.
///
/// # Panics
///
/// Panics if `config` carries fault injection or a timed crash plan: in
/// explore mode the controller owns every source of nondeterminism
/// (crashes are [`ExploreStep::Crash`] actions).
pub fn run_explored<L, S, B, C>(config: &SvmConfig, setup: S, body: B, controller: C) -> ExploreRun
where
    L: Clone + Send + 'static,
    S: FnOnce(&mut Setup) -> L,
    B: Fn(&SvmCtx<'_>, &L) + Send + Sync + 'static,
    C: FnMut(&mut World<SvmAgent>) -> ExploreStep,
{
    let mut cfg = config.clone();
    cfg.trace.record = true;
    assert!(
        !cfg.fault.is_active(),
        "explore mode owns all nondeterminism: no fault injection"
    );
    assert!(
        cfg.node_fault.crashes.is_empty(),
        "explore crashes are controller actions, not a timed plan"
    );
    let BuiltWorld {
        world,
        geometry,
        num_pages,
        initial,
        ..
    } = build_world(&cfg, setup, body);
    let (outcome, mut agent) = world.run_explore(controller);
    let trace = collect_trace(&mut agent, cfg.nodes, geometry, num_pages, initial);
    ExploreRun {
        outcome,
        errors: std::mem::take(&mut agent.errors),
        trace,
        mutation_hits: agent.mutation.hits,
        deaths: agent.recovery.deaths.iter().map(|(n, _)| *n).collect(),
    }
}
