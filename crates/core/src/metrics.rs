//! Protocol counters and memory accounting (paper Tables 4 and 6).

use svm_machine::Breakdown;
use svm_sim::SimTime;

/// Live protocol memory on one node, by component, with a high-water mark.
///
/// This is the "memory requirement" of paper Table 6: twins, stored diffs,
/// and write-notice structures. Home-based protocols keep diffs only in
/// flight and truncate notices at barriers, so their footprint stays small;
/// homeless protocols accumulate both until garbage collection.
#[derive(Clone, Default, Debug)]
pub struct MemoryStats {
    /// Bytes of live twins.
    pub twin_bytes: u64,
    /// Bytes of stored diffs (homeless diff store).
    pub diff_bytes: u64,
    /// Bytes of write-notice structures: interval logs and per-page pending
    /// lists.
    pub wn_bytes: u64,
    /// Highest total ever reached.
    pub max_total: u64,
}

impl MemoryStats {
    /// Current total protocol memory.
    pub fn total(&self) -> u64 {
        self.twin_bytes + self.diff_bytes + self.wn_bytes
    }

    fn bump_max(&mut self) {
        self.max_total = self.max_total.max(self.total());
    }

    /// Account `delta` bytes of twins (+/-).
    pub fn twins(&mut self, delta: i64) {
        self.twin_bytes = self
            .twin_bytes
            .checked_add_signed(delta)
            .expect("twin underflow");
        self.bump_max();
    }

    /// Account `delta` bytes of stored diffs (+/-).
    pub fn diffs(&mut self, delta: i64) {
        self.diff_bytes = self
            .diff_bytes
            .checked_add_signed(delta)
            .expect("diff underflow");
        self.bump_max();
    }

    /// Account `delta` bytes of write-notice structures (+/-).
    pub fn notices(&mut self, delta: i64) {
        self.wn_bytes = self
            .wn_bytes
            .checked_add_signed(delta)
            .expect("wn underflow");
        self.bump_max();
    }
}

/// Per-node protocol operation counters (paper Table 4).
#[derive(Clone, Default, Debug)]
pub struct NodeCounters {
    /// Faults that required fetching remote data (read or write access to
    /// an invalid page).
    pub read_misses: u64,
    /// Write-upgrade faults (twin-creation points; at an HLRC home, the
    /// twin is skipped but the fault still counts here).
    pub write_faults: u64,
    /// Reads at an HLRC home that had to wait for an in-flight diff.
    pub home_stalls: u64,
    /// Diffs created by (or on behalf of) this node.
    pub diffs_created: u64,
    /// Diffs applied on this node (home application or fault application).
    pub diffs_applied: u64,
    /// Payload bytes of created diffs.
    pub diff_bytes_created: u64,
    /// Intervals this node closed with at least one dirty page.
    pub intervals: u64,
    /// Lock acquires performed (local cache hits included).
    pub lock_acquires: u64,
    /// Lock acquires that needed the manager (remote round trips).
    pub remote_lock_acquires: u64,
    /// Barriers entered.
    pub barriers: u64,
    /// Garbage collections this node participated in.
    pub gc_runs: u64,
    /// Pages fetched whole (cold misses and home fetches).
    pub full_page_fetches: u64,
    /// Messages this node retransmitted (reliable-delivery layer; zero on
    /// a fault-free network).
    pub retransmissions: u64,
    /// Retransmit-timer expirations serviced on this node.
    pub retransmit_timeouts: u64,
    /// Acknowledgments this node sent.
    pub acks_sent: u64,
    /// Duplicate deliveries suppressed on this node.
    pub dup_suppressed: u64,
    /// Channels on this node that exhausted `max_retries` and declared
    /// their peer unreachable.
    pub retry_exhaustions: u64,
    /// Heartbeat probes this node sent (failure detector).
    pub heartbeats_sent: u64,
    /// Memory accounting.
    pub mem: MemoryStats,
}

/// Everything the protocol layer reports after a run.
#[derive(Clone, Debug, Default)]
pub struct ProtocolReport {
    /// Per-node counters.
    pub nodes: Vec<NodeCounters>,
    /// Per-node, per-barrier breakdown snapshots: `(barrier seq, time,
    /// cumulative breakdown at departure)` — the raw material for the
    /// paper's Figure 4.
    pub barrier_marks: Vec<Vec<(u64, SimTime, Breakdown)>>,
}

impl ProtocolReport {
    /// Sum of a per-node counter over all nodes.
    pub fn total(&self, f: impl Fn(&NodeCounters) -> u64) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Average of a per-node counter (paper Table 4 reports per-node
    /// averages).
    pub fn avg(&self, f: impl Fn(&NodeCounters) -> u64) -> f64 {
        self.total(f) as f64 / self.nodes.len() as f64
    }

    /// Maximum protocol memory high-water over nodes (Table 6 reports the
    /// worst node).
    pub fn max_protocol_memory(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.mem.max_total)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_high_water() {
        let mut m = MemoryStats::default();
        m.twins(1000);
        m.diffs(500);
        assert_eq!(m.total(), 1500);
        assert_eq!(m.max_total, 1500);
        m.twins(-1000);
        assert_eq!(m.total(), 500);
        assert_eq!(m.max_total, 1500, "high-water sticks");
        m.notices(2000);
        assert_eq!(m.max_total, 2500);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_memory_is_a_bug() {
        let mut m = MemoryStats::default();
        m.diffs(-1);
    }

    #[test]
    fn report_aggregation() {
        let mut r = ProtocolReport::default();
        for i in 0..4u64 {
            let mut c = NodeCounters {
                read_misses: i,
                ..NodeCounters::default()
            };
            c.mem.diffs(100 * i as i64);
            r.nodes.push(c);
        }
        assert_eq!(r.total(|c| c.read_misses), 6);
        assert!((r.avg(|c| c.read_misses) - 1.5).abs() < 1e-9);
        assert_eq!(r.max_protocol_memory(), 300);
    }
}
