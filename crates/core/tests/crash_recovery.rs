//! Node crash–recovery: failure detection, home failover, lock repair,
//! and graceful degradation (ISSUE: robustness tentpole).
//!
//! Every test here injects a deterministic crash via
//! [`NodeFaultConfig::crash_at`] and asserts one leg of the recovery
//! contract:
//!
//! * retry exhaustion without recovery surfaces as a structured
//!   [`ProtocolError::PeerUnreachable`] — never a hang;
//! * graceful HLRC/OHLRC recovery re-homes the dead node's pages onto a
//!   covering survivor, the survivors finish clean, and the pre-crash data
//!   survives the failover bit-for-bit;
//! * fail-fast halts with [`ProtocolError::NodeFailed`] naming the node;
//! * homeless (LRC/OLRC) runs either finish or end in a structured error
//!   (diffs that lived only in the dead node are honestly unrecoverable);
//! * a lock token that dies with its holder is regenerated for the
//!   first orphaned acquirer;
//! * everything is bit-reproducible from the same seed, and a disabled
//!   plan + disabled recovery profile is an exact no-op.

use svm_core::{
    run, BarrierId, FaultProfile, LockId, ProtocolError, ProtocolName, RecoveryMode,
    RecoveryProfile, RunReport, SvmConfig,
};
use svm_machine::{NodeFaultConfig, NodeId};
use svm_sim::SimDuration;

const N: usize = 4;
const VICTIM: usize = 3;

/// A detector fast enough for short test runs: 2 ms heartbeats, dead
/// after 3 silent periods (6 ms window).
fn fast_recovery(mode: RecoveryMode) -> RecoveryProfile {
    RecoveryProfile {
        enabled: true,
        heartbeat_us: 2_000,
        miss_threshold: 3,
        mode,
    }
}

/// The shared workload: one page per node (explicitly homed), two warm-up
/// rounds that spread copies of every page to every node, then a long
/// compute window on the victim — where the crash lands — while the
/// survivors proceed to the barrier and wait out detection. Post-crash,
/// node 0 writes into the *dead node's* page and every survivor checks
/// both that write and the victim's pre-crash value: the page must have
/// failed over with its data intact.
fn page_workload(
    protocol: ProtocolName,
    recovery: RecoveryProfile,
    node_fault: NodeFaultConfig,
) -> RunReport {
    let mut cfg = SvmConfig::new(protocol, N);
    cfg.recovery = recovery;
    cfg.node_fault = node_fault;
    run(
        &cfg,
        |s| {
            let per = s.page_size() / std::mem::size_of::<u64>();
            let x = s.alloc_array_pages::<u64>(per * N, "x");
            for n in 0..N {
                s.assign_home(&x, n * per..(n + 1) * per, n);
            }
            x
        },
        move |ctx, x| {
            let n = ctx.node();
            let per = x.len() / N;
            // Round 1: everyone writes the first slot of its own page.
            x.set(ctx, n * per, n as u64 + 1);
            ctx.barrier(BarrierId(0));
            // Round 2: everyone reads every page (copies spread; the
            // survivors' copies are what failover elects from).
            for m in 0..N {
                assert_eq!(x.get(ctx, m * per), m as u64 + 1);
            }
            ctx.barrier(BarrierId(1));
            // Round 3: the crash window. The victim computes far past the
            // crash instant; survivors reach the barrier and block there
            // until the detector excuses the dead node.
            if n == VICTIM {
                ctx.compute_us(1_000_000);
            } else {
                ctx.compute_us(100);
            }
            ctx.barrier(BarrierId(2));
            // Post-crash: exercise the re-homed page in both directions.
            if n == 0 {
                x.set(ctx, VICTIM * per + 1, 77);
            }
            ctx.barrier(BarrierId(3));
            if n != VICTIM {
                assert_eq!(x.get(ctx, VICTIM * per), VICTIM as u64 + 1);
                assert_eq!(x.get(ctx, VICTIM * per + 1), 77);
            }
            ctx.barrier(BarrierId(4));
        },
    )
}

/// Satellite 1: with the reliable layer on, a bounded `max_retries`, and
/// recovery *disabled*, a crashed peer surfaces as a structured
/// `PeerUnreachable` naming both ends — never a hang — and the failure is
/// bit-reproducible.
#[test]
fn retry_exhaustion_without_recovery_is_structured_peer_down() {
    let run_once = || {
        let mut cfg = SvmConfig::new(ProtocolName::Hlrc, 2);
        // A (seeded, deterministic) nonzero dup rate activates the
        // reliable-delivery layer without recovery being armed.
        cfg.fault = FaultProfile {
            seed: 11,
            dup_rate: 0.001,
            max_retries: Some(3),
            ..FaultProfile::default()
        };
        cfg.node_fault = NodeFaultConfig::crash_at(1, 20_000);
        run(
            &cfg,
            |s| s.alloc_array::<u64>(1, "cell"),
            |ctx, cell| {
                if ctx.node() == 1 {
                    // Take the lock, then die inside the critical section.
                    ctx.lock(LockId(0));
                    ctx.compute_us(1_000_000);
                    ctx.unlock(LockId(0));
                } else {
                    // Request after the crash: the forward to the dead
                    // holder retransmits until the retry budget runs out.
                    ctx.compute_us(30_000);
                    ctx.lock(LockId(0));
                    let v = cell.get(ctx, 0);
                    cell.set(ctx, 0, v + 1);
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
            },
        )
    };
    let a = run_once();
    assert!(
        matches!(
            a.errors.first(),
            Some(ProtocolError::PeerUnreachable { node, peer })
                if *node == NodeId(0) && *peer == NodeId(1)
        ),
        "expected PeerUnreachable(node 0, peer 1), got {:?}",
        a.errors
    );
    assert!(!a.outcome.errors.is_empty(), "machine must record the halt");
    assert!(
        a.counters.total(|c| c.retry_exhaustions) >= 1,
        "exhaustion counter never fired"
    );
    let b = run_once();
    assert_eq!(a.outcome.total_time, b.outcome.total_time);
    assert_eq!(a.errors.len(), b.errors.len());
}

/// Tentpole: graceful home failover under HLRC and OHLRC. The dead node's
/// page is re-homed onto a covering survivor, the run finishes clean, the
/// pre-crash data survives, and the whole thing is bit-reproducible.
#[test]
fn home_based_graceful_failover_completes_clean() {
    for protocol in [ProtocolName::Hlrc, ProtocolName::Ohlrc] {
        let go = || {
            page_workload(
                protocol,
                fast_recovery(RecoveryMode::Graceful),
                NodeFaultConfig::crash_at(VICTIM, 50_000),
            )
        };
        let a = go();
        assert!(
            a.errors.is_empty() && a.outcome.is_clean(),
            "{protocol}: graceful failover must finish clean, got {:?} / {:?}",
            a.errors,
            a.outcome.errors
        );
        assert_eq!(
            a.deaths.iter().map(|d| d.0).collect::<Vec<_>>(),
            vec![NodeId(VICTIM as u16)],
            "{protocol}: exactly the victim must be declared dead"
        );
        assert!(
            a.recovery.rehomed_pages >= 1,
            "{protocol}: the victim's page was never re-homed"
        );
        assert_eq!(a.outcome.node_faults.crashes, 1);
        // Same seed, same plan: bit-identical recovery.
        let b = go();
        assert_eq!(a.outcome.total_time, b.outcome.total_time, "{protocol}");
        assert_eq!(a.recovery, b.recovery, "{protocol}");
        assert_eq!(a.deaths, b.deaths, "{protocol}");
        assert_eq!(
            a.outcome.traffic.grand_total(),
            b.outcome.traffic.grand_total(),
            "{protocol}"
        );
    }
}

/// Fail-fast mode: detection halts the run with a structured `NodeFailed`
/// naming the dead node; nothing is repaired.
#[test]
fn fail_fast_halts_with_node_failed() {
    let report = page_workload(
        ProtocolName::Hlrc,
        fast_recovery(RecoveryMode::FailFast),
        NodeFaultConfig::crash_at(VICTIM, 50_000),
    );
    assert!(
        matches!(
            report.errors.first(),
            Some(ProtocolError::NodeFailed { node, .. }) if *node == NodeId(VICTIM as u16)
        ),
        "expected NodeFailed({VICTIM}), got {:?}",
        report.errors
    );
    assert!(!report.outcome.errors.is_empty());
    assert_eq!(
        report.recovery.rehomed_pages, 0,
        "fail-fast must not repair"
    );
}

/// Homeless protocols degrade gracefully: the run either finishes clean
/// (nothing the survivors need died with the victim) or ends in a
/// structured error — never a hang, never a panic. The victim is still
/// detected and excused from the barriers either way.
#[test]
fn homeless_graceful_terminates_cleanly_or_structured() {
    for protocol in [ProtocolName::Lrc, ProtocolName::Olrc] {
        let report = page_workload(
            protocol,
            fast_recovery(RecoveryMode::Graceful),
            NodeFaultConfig::crash_at(VICTIM, 50_000),
        );
        assert_eq!(
            report.deaths.iter().map(|d| d.0).collect::<Vec<_>>(),
            vec![NodeId(VICTIM as u16)],
            "{protocol}: the victim must be declared dead"
        );
        if !report.errors.is_empty() {
            // Degraded, not broken: every error is a recovery-shaped one.
            for e in &report.errors {
                assert!(
                    matches!(
                        e,
                        ProtocolError::UnrecoverablePage { .. }
                            | ProtocolError::UnrecoverableDiffs { .. }
                            | ProtocolError::PeerUnreachable { .. }
                    ),
                    "{protocol}: unexpected error shape {e:?}"
                );
            }
        }
    }
}

/// A lock token that dies with its holder is regenerated: the orphaned
/// acquirers unblock, the critical sections still serialize, and the
/// repair is bit-reproducible.
#[test]
fn lock_repair_regrants_dead_holders_token() {
    let go = || {
        let mut cfg = SvmConfig::new(ProtocolName::Hlrc, 3);
        cfg.recovery = fast_recovery(RecoveryMode::Graceful);
        cfg.node_fault = NodeFaultConfig::crash_at(2, 20_000);
        run(
            &cfg,
            |s| s.alloc_array::<u64>(1, "cell"),
            |ctx, cell| {
                if ctx.node() == 2 {
                    // Grab the token first, then die holding it.
                    ctx.lock(LockId(0));
                    ctx.compute_us(1_000_000);
                    ctx.unlock(LockId(0));
                } else {
                    ctx.compute_us(5_000);
                    ctx.lock(LockId(0));
                    let v = cell.get(ctx, 0);
                    ctx.compute_us(50);
                    cell.set(ctx, 0, v + 1);
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
                if ctx.node() != 2 {
                    assert_eq!(cell.get(ctx, 0), 2, "survivor bumps must serialize");
                }
                ctx.barrier(BarrierId(1));
            },
        )
    };
    let a = go();
    assert!(
        a.errors.is_empty() && a.outcome.is_clean(),
        "lock repair must finish clean, got {:?} / {:?}",
        a.errors,
        a.outcome.errors
    );
    assert!(
        a.recovery.revoked_grants >= 1,
        "the dead holder's token was never regenerated"
    );
    assert_eq!(
        a.deaths.iter().map(|d| d.0).collect::<Vec<_>>(),
        vec![NodeId(2)]
    );
    let b = go();
    assert_eq!(a.outcome.total_time, b.outcome.total_time);
    assert_eq!(a.recovery, b.recovery);
}

/// A restart *after* the survivors declared the node dead is a warm
/// standby that stays fenced: the membership decision is final, and the
/// run's outcome is identical to the no-restart run.
#[test]
fn restart_after_declaration_stays_fenced() {
    let base = page_workload(
        ProtocolName::Hlrc,
        fast_recovery(RecoveryMode::Graceful),
        NodeFaultConfig::crash_at(VICTIM, 50_000),
    );
    let mut plan = NodeFaultConfig::crash_at(VICTIM, 50_000);
    // Well past the ~56 ms detection instant.
    plan.crashes[0].restart_after = Some(SimDuration::from_micros(100_000));
    let restarted = page_workload(
        ProtocolName::Hlrc,
        fast_recovery(RecoveryMode::Graceful),
        plan,
    );
    assert!(restarted.errors.is_empty() && restarted.outcome.is_clean());
    assert_eq!(restarted.outcome.node_faults.restarts, 1);
    assert_eq!(
        base.outcome.total_time, restarted.outcome.total_time,
        "a fenced standby must not perturb the surviving run"
    );
    assert_eq!(base.recovery, restarted.recovery);
}

/// Satellite 3 companion (core side): a disabled crash plan plus a
/// disabled recovery profile — even with nonsense timing parameters — is
/// an exact no-op against the default configuration.
#[test]
fn disabled_plan_and_recovery_are_a_true_noop() {
    for protocol in [ProtocolName::Hlrc, ProtocolName::Lrc] {
        let base = page_workload(
            protocol,
            RecoveryProfile::default(),
            NodeFaultConfig::default(),
        );
        let gated = page_workload(
            protocol,
            RecoveryProfile {
                enabled: false, // the only gate that matters
                heartbeat_us: 1,
                miss_threshold: 1,
                mode: RecoveryMode::FailFast,
            },
            NodeFaultConfig {
                crashes: Vec::new(),
                stall_limit: Some(SimDuration::from_micros(1)),
            },
        );
        assert!(base.errors.is_empty() && gated.errors.is_empty());
        assert_eq!(
            base.outcome.total_time, gated.outcome.total_time,
            "{protocol}"
        );
        assert_eq!(
            base.outcome.breakdowns, gated.outcome.breakdowns,
            "{protocol}"
        );
        assert_eq!(
            base.outcome.traffic.grand_total(),
            gated.outcome.traffic.grand_total(),
            "{protocol}"
        );
        assert_eq!(gated.counters.total(|c| c.heartbeats_sent), 0);
        assert_eq!(gated.recovery.deaths, 0);
    }
}
