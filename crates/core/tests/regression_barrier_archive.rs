//! Regression: the barrier manager must not mix arriving write-notice
//! records into node 0's own forwarding log. Doing so let node 0's lock
//! grants hand out records without their happens-before predecessors,
//! losing updates (found by the random-program property test; this is the
//! shrunk schedule).

use svm_core::{run, BarrierId, LockId, ProtocolName, SvmConfig};

#[derive(Clone, Debug)]
enum Step {
    B(usize, u64),
    T(u64),
}
use Step::*;

#[test]
fn barrier_archive_stays_out_of_manager_log() {
    let schedules: Vec<Vec<Step>> = vec![
        vec![B(3, 1), T(1), B(2, 1)],
        vec![B(6, 1), B(5, 1), B(3, 1)],
        vec![B(3, 200), T(380), T(89)],
        vec![B(7, 1), B(7, 1), B(2, 1)],
        vec![B(7, 1), B(6, 1)],
    ];
    let cells = 8usize;
    let mut expected = vec![0u64; cells];
    for s in &schedules {
        for st in s {
            if let B(c, _) = st {
                expected[*c] += 1;
            }
        }
    }
    let cfg = SvmConfig::new(ProtocolName::Lrc, schedules.len());
    run(
        &cfg,
        move |s| s.alloc_array::<u64>(cells, "cells"),
        move |ctx, arr| {
            for step in &schedules[ctx.node()] {
                match step {
                    B(cell, cs) => {
                        let l = LockId(*cell as u32 % 5);
                        ctx.lock(l);
                        let v = arr.get(ctx, *cell);
                        ctx.compute_us(*cs);
                        arr.set(ctx, *cell, v + 1);
                        ctx.unlock(l);
                    }
                    T(us) => ctx.compute_us(*us),
                }
            }
            ctx.barrier(BarrierId(0));
            for (c, want) in expected.iter().enumerate() {
                let got = arr.get(ctx, c);
                if got != *want {
                    eprintln!(
                        "MISMATCH node {} cell {c}: got {got} want {want}",
                        ctx.node()
                    );
                }
            }
            ctx.barrier(BarrierId(1));
            for (c, want) in expected.iter().enumerate() {
                assert_eq!(arr.get(ctx, c), *want, "cell {c} node {}", ctx.node());
            }
        },
    );
}
