//! Fault-injection testing: the four protocols must survive lossy,
//! duplicating, reordering networks without any change to application
//! results, and the whole chaos schedule must be bit-reproducible from
//! its seed.
//!
//! Three layers:
//!
//! * a property test — random fault plans crossed with random race-free
//!   lock/barrier programs, all four protocols, results must equal the
//!   sequential reduction (shrinking via `svm-testkit`);
//! * a determinism test — the same fault seed replays the identical
//!   retransmission trace and virtual-time outcome bit-for-bit;
//! * targeted regressions — drop the first message of each protocol
//!   message kind, per protocol, and require the reliable-delivery layer
//!   to recover it (at least one retransmission, correct final state).

use svm_core::{run, BarrierId, FaultProfile, LockId, ProtocolName, RunReport, SvmConfig};
use svm_testkit::{check, Source};

/// One step of a node's schedule (same shape as `random_programs.rs`).
#[derive(Clone, Debug)]
enum Step {
    /// Increment `cell` under its lock `cell % LOCKS`.
    Bump { cell: usize, cs_us: u16 },
    /// Compute outside any critical section.
    Think { us: u16 },
}

const CELLS: usize = 16;
const LOCKS: u32 = 4;

fn step(src: &mut Source) -> Step {
    if src.bool() {
        Step::Think {
            us: src.u16_in(1..400),
        }
    } else {
        Step::Bump {
            cell: src.usize_in(0..CELLS),
            cs_us: src.u16_in(1..150),
        }
    }
}

fn schedules(src: &mut Source, nodes: std::ops::Range<usize>) -> Vec<Vec<Step>> {
    let n = src.usize_in(nodes);
    (0..n).map(|_| src.vec(0..15, step)).collect()
}

fn expected_counts(schedules: &[Vec<Step>]) -> Vec<u64> {
    let mut counts = vec![0u64; CELLS];
    for sched in schedules {
        for step in sched {
            if let Step::Bump { cell, .. } = step {
                counts[*cell] += 1;
            }
        }
    }
    counts
}

/// Run a schedule under `protocol` with `fault` injected; every node
/// verifies the sequential reduction before finishing.
fn run_one(protocol: ProtocolName, schedules: Vec<Vec<Step>>, fault: FaultProfile) -> RunReport {
    let nodes = schedules.len();
    let expected = expected_counts(&schedules);
    let mut cfg = SvmConfig::new(protocol, nodes);
    cfg.fault = fault;
    let report = run(
        &cfg,
        |s| s.alloc_array::<u64>(CELLS, "cells"),
        move |ctx, cells| {
            for step in &schedules[ctx.node()] {
                match step {
                    Step::Bump { cell, cs_us } => {
                        let l = LockId(*cell as u32 % LOCKS);
                        ctx.lock(l);
                        let v = cells.get(ctx, *cell);
                        ctx.compute_us(*cs_us as u64);
                        cells.set(ctx, *cell, v + 1);
                        ctx.unlock(l);
                    }
                    Step::Think { us } => ctx.compute_us(*us as u64),
                }
            }
            ctx.barrier(BarrierId(0));
            for (c, want) in expected.iter().enumerate() {
                assert_eq!(
                    cells.get(ctx, c),
                    *want,
                    "cell {c} wrong on node {} under {protocol}",
                    ctx.node()
                );
            }
            ctx.barrier(BarrierId(1));
        },
    );
    assert!(
        report.errors.is_empty(),
        "protocol errors under {protocol}: {:?}",
        report.errors
    );
    report
}

/// A random fault profile: drop/dup up to 2%, delay up to 20%, plus
/// occasional transient receiver stalls.
fn fault_profile(src: &mut Source) -> FaultProfile {
    FaultProfile {
        seed: src.u64_in(1..1 << 48),
        drop_rate: src.u64_in(0..21) as f64 / 1000.0,
        dup_rate: src.u64_in(0..21) as f64 / 1000.0,
        delay_rate: src.u64_in(0..201) as f64 / 1000.0,
        stall_rate: src.u64_in(0..4) as f64 / 1000.0,
        ..FaultProfile::default()
    }
}

/// All four protocols produce the sequential reduction for arbitrary
/// race-free programs under arbitrary (moderate) fault plans.
#[test]
fn protocols_agree_under_random_faults() {
    check(
        "protocols_agree_under_random_faults",
        |src| (fault_profile(src), schedules(src, 2..5)),
        |(fault, scheds)| {
            for protocol in ProtocolName::ALL {
                run_one(protocol, scheds.clone(), fault.clone());
            }
        },
    );
}

/// A fixed three-node contention program that exercises every remote
/// message kind: repeated lock-chained increments with barriers between
/// rounds.
fn contention_schedules() -> Vec<Vec<Step>> {
    let node = |seed: usize| -> Vec<Step> {
        (0..8)
            .map(|i| Step::Bump {
                cell: (seed + i) % 3,
                cs_us: 20 + (seed * 7 + i * 13) as u16 % 60,
            })
            .collect()
    };
    (0..3).map(node).collect()
}

/// The same fault seed replays the identical outcome — retransmission
/// trace, virtual time, and counters — bit-for-bit.
#[test]
fn same_fault_seed_replays_identically() {
    let fault = FaultProfile::chaos(0xC0FFEE, 0.02);
    for protocol in ProtocolName::ALL {
        let a = run_one(protocol, contention_schedules(), fault.clone());
        let b = run_one(protocol, contention_schedules(), fault.clone());
        assert_eq!(
            a.retransmit_trace, b.retransmit_trace,
            "retransmit trace differs across identical runs of {protocol}"
        );
        assert_eq!(a.outcome.total_time, b.outcome.total_time);
        assert_eq!(
            a.counters.total(|c| c.retransmissions),
            b.counters.total(|c| c.retransmissions)
        );
        assert_eq!(
            a.counters.total(|c| c.dup_suppressed),
            b.counters.total(|c| c.dup_suppressed)
        );
        assert_eq!(
            a.counters.total(|c| c.acks_sent),
            b.counters.total(|c| c.acks_sent)
        );
    }
}

/// Different fault seeds are genuinely different schedules (sanity that
/// the determinism test is not vacuous): at 2% drop at least one seed
/// must force a retransmission.
#[test]
fn chaos_runs_actually_retransmit() {
    let mut total = 0;
    for seed in 1..=4u64 {
        let r = run_one(
            ProtocolName::Hlrc,
            contention_schedules(),
            FaultProfile::chaos(seed, 0.02),
        );
        total += r.retransmit_trace.len();
    }
    assert!(
        total > 0,
        "no retransmissions across four 2%-drop chaos runs"
    );
}

/// Drop the first message of `kind` and require the run to still be
/// correct, with the loss visibly recovered by retransmission.
fn drop_kind(protocol: ProtocolName, kind: &'static str) {
    let fault = FaultProfile {
        drop_first_kind: Some(kind),
        ..FaultProfile::default()
    };
    let report = run_one(protocol, contention_schedules(), fault);
    assert!(
        report.counters.total(|c| c.retransmissions) >= 1,
        "{protocol}: dropping first {kind:?} caused no retransmission \
         (message kind never sent?)"
    );
    assert!(
        !report.retransmit_trace.is_empty(),
        "{protocol}: empty retransmit trace after dropping {kind:?}"
    );
}

/// Message kinds every protocol sends remotely in the contention program.
const COMMON_KINDS: &[&str] = &[
    "lock-request",
    "lock-forward",
    "lock-grant(+write-notices)",
    "barrier-arrive",
    "barrier-release",
];

/// Homeless-protocol kinds: cold page fetches plus diff collection.
const HOMELESS_KINDS: &[&str] = &["page-request", "page-reply", "diff-request", "diff-reply"];

/// Home-based kinds: diff flushes to the home plus home fetches.
const HOME_KINDS: &[&str] = &[
    "diff-flush(to home)",
    "page-request(to home)",
    "page-reply(from home)",
];

#[test]
fn lrc_survives_dropping_each_message_kind() {
    for kind in COMMON_KINDS.iter().chain(HOMELESS_KINDS) {
        drop_kind(ProtocolName::Lrc, kind);
    }
}

#[test]
fn olrc_survives_dropping_each_message_kind() {
    for kind in COMMON_KINDS.iter().chain(HOMELESS_KINDS) {
        drop_kind(ProtocolName::Olrc, kind);
    }
}

#[test]
fn hlrc_survives_dropping_each_message_kind() {
    for kind in COMMON_KINDS.iter().chain(HOME_KINDS) {
        drop_kind(ProtocolName::Hlrc, kind);
    }
}

#[test]
fn ohlrc_survives_dropping_each_message_kind() {
    for kind in COMMON_KINDS.iter().chain(HOME_KINDS) {
        drop_kind(ProtocolName::Ohlrc, kind);
    }
}

/// Duplicate-ack-after-drain regression: with every message duplicated
/// (`dup_rate = 1.0`, nothing dropped) each cumulative ack also arrives a
/// second time — frequently after the channel has already drained and its
/// retransmit timer was cancelled. The late duplicate must be a pure
/// no-op: no double timer cancel, no counter skew, no retransmissions
/// (nothing is ever lost), and the whole thing bit-reproducible.
#[test]
fn duplicate_ack_after_drain_is_harmless() {
    let fault = FaultProfile {
        seed: 7,
        dup_rate: 1.0,
        ..FaultProfile::default()
    };
    for protocol in ProtocolName::ALL {
        let a = run_one(protocol, contention_schedules(), fault.clone());
        assert!(
            a.counters.total(|c| c.dup_suppressed) > 0,
            "{protocol}: full duplication produced no suppressed duplicates \
             (the after-drain ack path was never exercised)"
        );
        assert_eq!(
            a.counters.total(|c| c.retransmissions),
            0,
            "{protocol}: duplicate acks after drain must not trigger \
             retransmissions — nothing was lost"
        );
        assert_eq!(a.counters.total(|c| c.retransmit_timeouts), 0);
        // Replay: the drain/duplicate interleaving is deterministic.
        let b = run_one(protocol, contention_schedules(), fault.clone());
        assert_eq!(a.outcome.total_time, b.outcome.total_time);
        assert_eq!(
            a.counters.total(|c| c.dup_suppressed),
            b.counters.total(|c| c.dup_suppressed)
        );
        assert_eq!(
            a.counters.total(|c| c.acks_sent),
            b.counters.total(|c| c.acks_sent)
        );
    }
}

/// Satellite 2 (half one): an explicitly zeroed fault profile — even with
/// a nonzero seed — is a true no-op: bit-identical virtual-time outcome
/// and counters versus the default config.
#[test]
fn zero_rate_fault_profile_is_a_true_noop() {
    for protocol in ProtocolName::ALL {
        let base = run_one(protocol, contention_schedules(), FaultProfile::default());
        let zeroed = run_one(
            protocol,
            contention_schedules(),
            FaultProfile {
                seed: 0xDEAD_BEEF, // seed set, all rates zero
                ..FaultProfile::default()
            },
        );
        assert_eq!(
            base.outcome.total_time, zeroed.outcome.total_time,
            "{protocol}: zero-rate fault profile changed virtual time"
        );
        assert_eq!(base.outcome.breakdowns, zeroed.outcome.breakdowns);
        assert_eq!(
            base.outcome.traffic.grand_total(),
            zeroed.outcome.traffic.grand_total(),
            "{protocol}: zero-rate fault profile changed traffic"
        );
        assert!(base.retransmit_trace.is_empty());
        assert!(zeroed.retransmit_trace.is_empty());
        assert_eq!(base.counters.total(|c| c.retransmissions), 0);
        assert_eq!(zeroed.counters.total(|c| c.acks_sent), 0);
    }
}
