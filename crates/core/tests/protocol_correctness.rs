//! End-to-end correctness of all four protocols on small programs.
//!
//! Every test runs under LRC, OLRC, HLRC and OHLRC across several node
//! counts and checks that shared-memory results match what sequential
//! consistency at synchronization points requires — the ground truth the
//! Splash-2 reproductions rely on.

use svm_core::{run, BarrierId, HomePolicy, LockId, ProtocolName, SvmConfig};
use svm_machine::Category;

fn configs(nodes: usize) -> Vec<SvmConfig> {
    // The paper's four, plus the AURC reference protocol.
    ProtocolName::WITH_AURC
        .iter()
        .map(|&p| SvmConfig::new(p, nodes))
        .collect()
}

#[test]
fn lock_protected_counter_is_sequentially_consistent() {
    for nodes in [1, 2, 4, 8] {
        for cfg in configs(nodes) {
            let per_node = 20u64;
            let report = run(
                &cfg,
                |s| s.alloc_array::<u64>(1, "counter"),
                move |ctx, counter| {
                    for _ in 0..per_node {
                        ctx.lock(LockId(0));
                        let v = counter.get(ctx, 0);
                        ctx.compute_us(10);
                        counter.set(ctx, 0, v + 1);
                        ctx.unlock(LockId(0));
                    }
                    ctx.barrier(BarrierId(0));
                    let total = counter.get(ctx, 0);
                    assert_eq!(
                        total,
                        per_node * ctx.nodes() as u64,
                        "counter mismatch on node {}",
                        ctx.node()
                    );
                },
            );
            assert_eq!(
                report.counters.total(|c| c.lock_acquires),
                per_node * nodes as u64,
                "{} x{nodes}: acquire count",
                cfg.protocol
            );
        }
    }
}

#[test]
fn barrier_phases_propagate_writes() {
    for nodes in [1, 3, 6] {
        for cfg in configs(nodes) {
            let n = 1000usize;
            run(
                &cfg,
                |s| {
                    let a = s.alloc_array_pages::<u64>(n, "data");
                    for i in 0..n {
                        s.init(&a, i, i as u64);
                    }
                    a
                },
                move |ctx, a| {
                    let me = ctx.node();
                    let p = ctx.nodes();
                    // Phase 1: everyone verifies the initialized data.
                    for i in (me..n).step_by(p) {
                        assert_eq!(a.get(ctx, i), i as u64);
                    }
                    ctx.barrier(BarrierId(1));
                    // Phase 2: each node rewrites its strided share.
                    for i in (me..n).step_by(p) {
                        a.set(ctx, i, (i * 2) as u64);
                    }
                    ctx.barrier(BarrierId(2));
                    // Phase 3: everyone sees all updates.
                    for i in 0..n {
                        assert_eq!(a.get(ctx, i), (i * 2) as u64, "i={i} node={me}");
                    }
                    ctx.barrier(BarrierId(3));
                },
            );
        }
    }
}

#[test]
fn false_sharing_multiple_writers_one_page() {
    // All nodes write disjoint words of the SAME page between barriers —
    // the multiple-writer case that twins/diffs exist to solve.
    for nodes in [2, 4, 8] {
        for cfg in configs(nodes) {
            run(
                &cfg,
                |s| s.alloc_array::<u64>(64, "hot-page"),
                move |ctx, a| {
                    let me = ctx.node();
                    for round in 0..5u64 {
                        a.set(ctx, me, round * 100 + me as u64);
                        ctx.barrier(BarrierId(round as u32));
                        for w in 0..ctx.nodes() {
                            assert_eq!(
                                a.get(ctx, w),
                                round * 100 + w as u64,
                                "round {round}, writer {w}, reader {me}"
                            );
                        }
                        ctx.barrier(BarrierId(1000 + round as u32));
                    }
                },
            );
        }
    }
}

#[test]
fn migratory_data_through_lock_chain() {
    for nodes in [2, 5] {
        for cfg in configs(nodes) {
            run(
                &cfg,
                |s| s.alloc_array::<u64>(512, "migratory"),
                move |ctx, a| {
                    // Each node appends its id to a lock-protected log.
                    for round in 0..10 {
                        ctx.lock(LockId(7));
                        let len = a.get(ctx, 0);
                        a.set(ctx, len as usize + 1, ctx.node() as u64);
                        a.set(ctx, 0, len + 1);
                        ctx.unlock(LockId(7));
                        ctx.compute_us(50 * ((ctx.node() as u64 + round) % 3 + 1));
                    }
                    ctx.barrier(BarrierId(0));
                    let len = a.get(ctx, 0);
                    assert_eq!(len, 10 * ctx.nodes() as u64);
                    let mut per_node = vec![0u64; ctx.nodes()];
                    for i in 0..len {
                        per_node[a.get(ctx, i as usize + 1) as usize] += 1;
                    }
                    assert!(per_node.iter().all(|&c| c == 10));
                },
            );
        }
    }
}

#[test]
fn home_effect_single_writer_produces_no_hlrc_diffs() {
    // One writer per page region, homes placed at the writers: HLRC must
    // create zero diffs (paper Table 4, LU/SOR rows); LRC must create some.
    // Chunks are page multiples (1024 u64 = one 8 KB page per chunk).
    let n = 4096usize;
    let nodes = 4;
    let mk = |protocol| {
        let mut cfg = SvmConfig::new(protocol, nodes);
        cfg.home_policy = HomePolicy::Explicit;
        cfg
    };
    let body = move |ctx: &svm_core::SvmCtx<'_>, a: &svm_core::api::SharedArr<u64>| {
        let me = ctx.node();
        let chunk = n / ctx.nodes();
        for round in 0..3u64 {
            for i in me * chunk..(me + 1) * chunk {
                a.set(ctx, i, round + i as u64);
            }
            ctx.barrier(BarrierId(round as u32));
            // Read a neighbour's chunk.
            let nb = (me + 1) % ctx.nodes();
            for i in (nb * chunk..(nb + 1) * chunk).step_by(64) {
                assert_eq!(a.get(ctx, i), round + i as u64);
            }
            ctx.barrier(BarrierId(100 + round as u32));
        }
    };
    let setup = move |s: &mut svm_core::Setup| {
        let a = s.alloc_array_pages::<u64>(n, "partitioned");
        let chunk = n / s.nodes();
        for w in 0..s.nodes() {
            s.assign_home(&a, w * chunk..(w + 1) * chunk, w);
        }
        a
    };

    let hlrc = run(&mk(ProtocolName::Hlrc), setup, body);
    assert_eq!(
        hlrc.counters.total(|c| c.diffs_created),
        0,
        "home effect: single-writer pages homed at writers need no diffs"
    );

    let lrc = run(&mk(ProtocolName::Lrc), setup, body);
    assert!(
        lrc.counters.total(|c| c.diffs_created) > 0,
        "homeless LRC must create diffs for shared pages"
    );
    // And the home-based run should be at least as fast here.
    assert!(hlrc.secs() <= lrc.secs() * 1.05);
}

#[test]
fn breakdowns_integrate_to_total_time() {
    for cfg in configs(4) {
        let report = run(
            &cfg,
            |s| s.alloc_array_pages::<u64>(4096, "x"),
            |ctx, a| {
                let me = ctx.node();
                for i in (me * 100)..(me * 100 + 100) {
                    a.set(ctx, i, i as u64);
                }
                ctx.compute_us(500);
                ctx.barrier(BarrierId(0));
                let _ = a.get(ctx, ((me + 1) % ctx.nodes()) * 100);
                ctx.barrier(BarrierId(1));
            },
        );
        for (i, b) in report.outcome.breakdowns.iter().enumerate() {
            assert_eq!(
                b.total().as_nanos(),
                report.outcome.total_time.as_nanos(),
                "{} node {i}: categories must sum to elapsed time",
                cfg.protocol
            );
            assert!(b[Category::Compute].as_nanos() >= 500_000);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for protocol in ProtocolName::ALL {
        let cfg = SvmConfig::new(protocol, 6);
        let go = || {
            run(
                &cfg,
                |s| s.alloc_array_pages::<u64>(2000, "d"),
                |ctx, a| {
                    let me = ctx.node();
                    for r in 0..4u64 {
                        ctx.lock(LockId((me % 3) as u32));
                        let v = a.get(ctx, me);
                        a.set(ctx, me, v + r);
                        ctx.unlock(LockId((me % 3) as u32));
                        ctx.compute_us(100 + me as u64 * 13);
                        ctx.barrier(BarrierId(r as u32));
                    }
                },
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.outcome.total_time, b.outcome.total_time, "{protocol}");
        assert_eq!(a.outcome.events_executed, b.outcome.events_executed);
        assert_eq!(
            a.counters.total(|c| c.read_misses),
            b.counters.total(|c| c.read_misses)
        );
    }
}

#[test]
fn garbage_collection_triggers_and_preserves_data() {
    let mut cfg = SvmConfig::new(ProtocolName::Lrc, 4);
    cfg.gc_threshold_bytes = 20_000; // tiny: force GC at barriers
    let n = 8192usize;
    let report = run(
        &cfg,
        |s| s.alloc_array_pages::<u64>(n, "gc-data"),
        move |ctx, a| {
            let me = ctx.node();
            let p = ctx.nodes();
            for round in 0..6u64 {
                // Strided writes => many diffs on many pages.
                for i in (me..n).step_by(p) {
                    a.set(ctx, i, round * 1_000_000 + i as u64);
                }
                ctx.barrier(BarrierId(round as u32));
                for i in 0..n {
                    assert_eq!(a.get(ctx, i), round * 1_000_000 + i as u64);
                }
                ctx.barrier(BarrierId(100 + round as u32));
            }
        },
    );
    assert!(
        report.counters.total(|c| c.gc_runs) > 0,
        "tiny threshold must trigger garbage collection"
    );
}

#[test]
fn hlrc_never_garbage_collects_and_uses_little_memory() {
    let mut lrc_cfg = SvmConfig::new(ProtocolName::Lrc, 4);
    lrc_cfg.gc_threshold_bytes = u64::MAX; // let memory grow for comparison
    let hlrc_cfg = SvmConfig::new(ProtocolName::Hlrc, 4);
    let n = 8192usize;
    let body = move |ctx: &svm_core::SvmCtx<'_>, a: &svm_core::api::SharedArr<u64>| {
        let me = ctx.node();
        let p = ctx.nodes();
        for round in 0..4u64 {
            for i in (me..n).step_by(p) {
                a.set(ctx, i, round + i as u64);
            }
            ctx.barrier(BarrierId(round as u32));
        }
    };
    let setup = move |s: &mut svm_core::Setup| s.alloc_array_pages::<u64>(n, "m");
    let lrc = run(&lrc_cfg, setup, body);
    let hlrc = run(&hlrc_cfg, setup, body);
    assert_eq!(hlrc.counters.total(|c| c.gc_runs), 0);
    assert!(
        hlrc.counters.max_protocol_memory() * 2 < lrc.counters.max_protocol_memory(),
        "home-based protocol memory ({}) must be far below homeless ({})",
        hlrc.counters.max_protocol_memory(),
        lrc.counters.max_protocol_memory()
    );
}

#[test]
fn first_touch_policy_works() {
    for protocol in [ProtocolName::Hlrc, ProtocolName::Ohlrc] {
        let mut cfg = SvmConfig::new(protocol, 4);
        cfg.home_policy = HomePolicy::FirstTouch;
        run(
            &cfg,
            |s| s.alloc_array_pages::<u64>(4096, "ft"),
            |ctx, a| {
                let me = ctx.node();
                let chunk = 4096 / ctx.nodes();
                for i in me * chunk..(me + 1) * chunk {
                    a.set(ctx, i, i as u64 + 7);
                }
                ctx.barrier(BarrierId(0));
                for i in 0..4096 {
                    assert_eq!(a.get(ctx, i), i as u64 + 7);
                }
                ctx.barrier(BarrierId(1));
            },
        );
    }
}

#[test]
fn single_node_runs_are_cheap_and_correct() {
    for cfg in configs(1) {
        let report = run(
            &cfg,
            |s| s.alloc_array::<u64>(100, "solo"),
            |ctx, a| {
                ctx.lock(LockId(0));
                a.set(ctx, 0, 42);
                ctx.unlock(LockId(0));
                ctx.barrier(BarrierId(0));
                assert_eq!(a.get(ctx, 0), 42);
                ctx.compute_us(1000);
            },
        );
        assert_eq!(
            report.counters.total(|c| c.read_misses),
            0,
            "{}",
            cfg.protocol
        );
        assert_eq!(report.outcome.traffic.grand_total().messages, 0);
    }
}
