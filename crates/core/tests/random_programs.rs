//! Property-based protocol testing: random synchronized programs must
//! produce sequentially consistent results under all four protocols.
//!
//! A generated program is a per-node schedule of lock-protected
//! read-modify-write operations on shared cells interleaved with compute
//! and global barriers. Data-race freedom is by construction (each cell is
//! guarded by a fixed lock), so every protocol must make the final state
//! equal the obvious sequential reduction (cell value = number of
//! increments), and all protocols must agree with each other.

use proptest::prelude::*;
use svm_core::{run, BarrierId, LockId, ProtocolName, SvmConfig};

/// One step of a node's schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Increment `cell` under its lock `cell % LOCKS`, with some critical-
    /// section compute time.
    Bump { cell: usize, cs_us: u16 },
    /// Compute outside any critical section.
    Think { us: u16 },
}

const CELLS: usize = 24;
const LOCKS: u32 = 5;

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        ((0..CELLS), (1u16..200)).prop_map(|(cell, cs_us)| Step::Bump { cell, cs_us }),
        (1u16..500).prop_map(|us| Step::Think { us }),
    ]
}

fn arb_schedules(nodes: usize) -> impl Strategy<Value = Vec<Vec<Step>>> {
    proptest::collection::vec(proptest::collection::vec(arb_step(), 0..25), nodes)
}

fn expected_counts(schedules: &[Vec<Step>]) -> Vec<u64> {
    let mut counts = vec![0u64; CELLS];
    for sched in schedules {
        for step in sched {
            if let Step::Bump { cell, .. } = step {
                counts[*cell] += 1;
            }
        }
    }
    counts
}

fn run_one(protocol: ProtocolName, schedules: Vec<Vec<Step>>) -> (f64, Vec<u64>) {
    let nodes = schedules.len();
    let expected = expected_counts(&schedules);
    let cfg = SvmConfig::new(protocol, nodes);
    let report = run(
        &cfg,
        |s| s.alloc_array::<u64>(CELLS, "cells"),
        move |ctx, cells| {
            for step in &schedules[ctx.node()] {
                match step {
                    Step::Bump { cell, cs_us } => {
                        let l = LockId(*cell as u32 % LOCKS);
                        ctx.lock(l);
                        let v = cells.get(ctx, *cell);
                        ctx.compute_us(*cs_us as u64);
                        cells.set(ctx, *cell, v + 1);
                        ctx.unlock(l);
                    }
                    Step::Think { us } => ctx.compute_us(*us as u64),
                }
            }
            ctx.barrier(BarrierId(0));
            // Every node verifies the full final state.
            for (c, want) in expected.iter().enumerate() {
                assert_eq!(
                    cells.get(ctx, c),
                    *want,
                    "cell {c} wrong on node {} under {protocol}",
                    ctx.node()
                );
            }
            ctx.barrier(BarrierId(1));
        },
    );
    let finals = (0..CELLS).map(|_| 0).collect(); // verified in-body
    (report.secs(), finals)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All four protocols compute the same (correct) final state for
    /// arbitrary race-free programs on 2–6 nodes.
    #[test]
    fn protocols_agree_on_random_programs(
        schedules in (2usize..=6).prop_flat_map(arb_schedules)
    ) {
        for protocol in ProtocolName::ALL {
            let (_secs, _) = run_one(protocol, schedules.clone());
        }
    }

    /// The same schedule under the same protocol is bit-deterministic.
    #[test]
    fn random_programs_are_deterministic(
        schedules in (2usize..=4).prop_flat_map(arb_schedules)
    ) {
        let (a, _) = run_one(ProtocolName::Hlrc, schedules.clone());
        let (b, _) = run_one(ProtocolName::Hlrc, schedules);
        prop_assert_eq!(a, b);
    }
}
