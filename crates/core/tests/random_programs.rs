//! Property-based protocol testing: random synchronized programs must
//! produce sequentially consistent results under all four protocols.
//!
//! A generated program is a per-node schedule of lock-protected
//! read-modify-write operations on shared cells interleaved with compute
//! and global barriers. Data-race freedom is by construction (each cell is
//! guarded by a fixed lock), so every protocol must make the final state
//! equal the obvious sequential reduction (cell value = number of
//! increments), and all protocols must agree with each other.
//!
//! Runs on the in-tree `svm-testkit` harness: deterministic seeded cases,
//! choice-sequence shrinking, `TESTKIT_SEED=…` reproduction.

use svm_core::{run, BarrierId, LockId, ProtocolName, SvmConfig};
use svm_testkit::{check, Source};

/// One step of a node's schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Increment `cell` under its lock `cell % LOCKS`, with some critical-
    /// section compute time.
    Bump { cell: usize, cs_us: u16 },
    /// Compute outside any critical section.
    Think { us: u16 },
}

const CELLS: usize = 24;
const LOCKS: u32 = 5;

fn step(src: &mut Source) -> Step {
    if src.bool() {
        Step::Think {
            us: src.u16_in(1..500),
        }
    } else {
        Step::Bump {
            cell: src.usize_in(0..CELLS),
            cs_us: src.u16_in(1..200),
        }
    }
}

/// Per-node schedules for a node count drawn from `nodes`.
fn schedules(src: &mut Source, nodes: std::ops::Range<usize>) -> Vec<Vec<Step>> {
    let n = src.usize_in(nodes);
    (0..n).map(|_| src.vec(0..25, step)).collect()
}

fn expected_counts(schedules: &[Vec<Step>]) -> Vec<u64> {
    let mut counts = vec![0u64; CELLS];
    for sched in schedules {
        for step in sched {
            if let Step::Bump { cell, .. } = step {
                counts[*cell] += 1;
            }
        }
    }
    counts
}

fn run_one(protocol: ProtocolName, schedules: Vec<Vec<Step>>) -> f64 {
    let nodes = schedules.len();
    let expected = expected_counts(&schedules);
    let cfg = SvmConfig::new(protocol, nodes);
    let report = run(
        &cfg,
        |s| s.alloc_array::<u64>(CELLS, "cells"),
        move |ctx, cells| {
            for step in &schedules[ctx.node()] {
                match step {
                    Step::Bump { cell, cs_us } => {
                        let l = LockId(*cell as u32 % LOCKS);
                        ctx.lock(l);
                        let v = cells.get(ctx, *cell);
                        ctx.compute_us(*cs_us as u64);
                        cells.set(ctx, *cell, v + 1);
                        ctx.unlock(l);
                    }
                    Step::Think { us } => ctx.compute_us(*us as u64),
                }
            }
            ctx.barrier(BarrierId(0));
            // Every node verifies the full final state.
            for (c, want) in expected.iter().enumerate() {
                assert_eq!(
                    cells.get(ctx, c),
                    *want,
                    "cell {c} wrong on node {} under {protocol}",
                    ctx.node()
                );
            }
            ctx.barrier(BarrierId(1));
        },
    );
    report.secs()
}

/// All four protocols compute the same (correct) final state for
/// arbitrary race-free programs on 2–6 nodes.
#[test]
fn protocols_agree_on_random_programs() {
    check(
        "protocols_agree_on_random_programs",
        |src| schedules(src, 2..7),
        |scheds| {
            for protocol in ProtocolName::ALL {
                run_one(protocol, scheds.clone());
            }
        },
    );
}

/// The same schedule under the same protocol is bit-deterministic.
#[test]
fn random_programs_are_deterministic() {
    check(
        "random_programs_are_deterministic",
        |src| schedules(src, 2..5),
        |scheds| {
            let a = run_one(ProtocolName::Hlrc, scheds.clone());
            let b = run_one(ProtocolName::Hlrc, scheds.clone());
            assert_eq!(a, b);
        },
    );
}

/// Pinned regression (formerly `.proptest-regressions`, seed
/// `00f7d232…`): a six-node schedule whose lock-chained increments once
/// exposed a lost-update ordering bug. All four protocols must reproduce
/// the sequential reduction.
#[test]
fn regression_six_node_lock_chain() {
    use Step::{Bump, Think};
    fn b(cell: usize, cs_us: u16) -> Step {
        Bump { cell, cs_us }
    }
    fn t(us: u16) -> Step {
        Think { us }
    }
    let schedules = vec![
        vec![b(13, 75), b(2, 1), b(2, 1), b(14, 1), b(18, 1)],
        vec![
            b(13, 100),
            b(17, 163),
            b(13, 101),
            b(11, 65),
            t(147),
            t(110),
            t(327),
            t(107),
        ],
        vec![b(5, 131), b(0, 173), t(285), t(151), t(299)],
        vec![
            t(14),
            t(133),
            t(262),
            b(6, 147),
            b(6, 5),
            t(371),
            b(8, 181),
            b(17, 183),
            b(16, 85),
            b(17, 127),
            t(282),
            t(34),
            b(1, 168),
            b(22, 123),
            t(398),
        ],
        vec![
            t(242),
            b(19, 173),
            t(362),
            t(299),
            t(183),
            t(490),
            t(400),
            t(270),
            t(173),
            t(388),
            t(437),
            t(270),
            b(3, 124),
        ],
        vec![
            t(266),
            b(7, 57),
            b(3, 106),
            b(18, 65),
            t(371),
            b(14, 76),
            t(78),
            b(17, 68),
            t(292),
            t(225),
            b(8, 24),
            t(398),
            b(0, 34),
            t(27),
            t(57),
            t(394),
            b(3, 184),
            t(33),
            b(16, 166),
            b(6, 104),
            b(9, 70),
            b(23, 4),
            b(6, 196),
            t(144),
        ],
    ];
    for protocol in ProtocolName::ALL {
        run_one(protocol, schedules.clone());
    }
}
