//! Edge paths of the protocols: home stalls, version-checked fetch
//! queueing, racing lock forwards, nested locks, page-spanning accesses,
//! and cold-start patterns.

use svm_core::{run, BarrierId, LockId, ProtocolName, SvmConfig};

/// A lock-passed producer/consumer where the consumer is the page's home:
/// the home's read must stall until the in-flight diff lands (paper Section
/// 2.4.2) — never return stale data.
#[test]
fn home_read_stalls_for_inflight_diffs() {
    for protocol in [ProtocolName::Hlrc, ProtocolName::Ohlrc] {
        let cfg = SvmConfig::new(protocol, 2);
        let report = run(
            &cfg,
            |s| {
                let a = s.alloc_array_pages::<u64>(1024, "x");
                s.assign_home(&a, 0..1024, 1); // node 1 is the home
                a
            },
            |ctx, a| {
                if ctx.node() == 0 {
                    ctx.lock(LockId(0));
                    for i in 0..256 {
                        a.set(ctx, i, i as u64 + 1); // big diff: slow flush
                    }
                    ctx.unlock(LockId(0));
                } else {
                    ctx.compute_us(3000); // let node 0 write first
                    ctx.lock(LockId(0));
                    // The grant races the diff flush to us (the home); the
                    // read below must wait for the flush.
                    for i in 0..256 {
                        assert_eq!(a.get(ctx, i), i as u64 + 1);
                    }
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
            },
        );
        assert_eq!(
            report.counters.total(|c| c.diffs_created),
            1,
            "{protocol}: one interval, one diff"
        );
    }
}

/// Three-party version check: the reader fetches from a third-node home
/// whose diff may still be in flight; the home must queue the fetch.
#[test]
fn home_fetch_waits_for_required_version() {
    for protocol in [ProtocolName::Hlrc, ProtocolName::Ohlrc] {
        let cfg = SvmConfig::new(protocol, 3);
        run(
            &cfg,
            |s| {
                let a = s.alloc_array_pages::<u64>(1024, "x");
                s.assign_home(&a, 0..1024, 2); // home is a bystander
                a
            },
            |ctx, a| {
                match ctx.node() {
                    0 => {
                        ctx.lock(LockId(0));
                        for i in 0..512 {
                            a.set(ctx, i, 7_000 + i as u64);
                        }
                        ctx.unlock(LockId(0));
                    }
                    1 => {
                        ctx.compute_us(2500);
                        ctx.lock(LockId(0));
                        // Acquire gave us write notices; the home may not
                        // have the diff yet. Version check must hold our
                        // fetch until it does.
                        assert_eq!(a.get(ctx, 511), 7_511);
                        ctx.unlock(LockId(0));
                    }
                    _ => {}
                }
                ctx.barrier(BarrierId(0));
            },
        );
    }
}

/// Heavy same-lock contention from many nodes at once: exercises manager
/// forwarding, queued waiters, and early forwards racing grants.
#[test]
fn lock_storm_is_serializable() {
    for protocol in ProtocolName::ALL {
        let nodes = 12;
        let cfg = SvmConfig::new(protocol, nodes);
        run(
            &cfg,
            |s| s.alloc_array::<u64>(2, "pair"),
            move |ctx, a| {
                for _ in 0..6 {
                    ctx.lock(LockId(3));
                    // Read-modify-write on two cells; invariant checked under
                    // the lock: they always move together.
                    let x = a.get(ctx, 0);
                    let y = a.get(ctx, 1);
                    assert_eq!(x, y, "torn read under {protocol}");
                    a.set(ctx, 0, x + 1);
                    a.set(ctx, 1, y + 1);
                    ctx.unlock(LockId(3));
                }
                ctx.barrier(BarrierId(0));
                assert_eq!(a.get(ctx, 0), 6 * ctx.nodes() as u64);
            },
        );
    }
}

/// Holding one lock while acquiring another (ordered, the Water-Spatial
/// migration pattern) must not deadlock or corrupt.
#[test]
fn nested_ordered_locks() {
    for protocol in [ProtocolName::Lrc, ProtocolName::Ohlrc] {
        let cfg = SvmConfig::new(protocol, 6);
        run(
            &cfg,
            |s| s.alloc_array::<u64>(8, "cells"),
            |ctx, a| {
                let me = ctx.node() as u64;
                for r in 0..4u32 {
                    let (la, lb) = (r % 3, r % 3 + 1);
                    ctx.lock(LockId(la));
                    ctx.lock(LockId(lb));
                    let v = a.get(ctx, la as usize);
                    ctx.compute_us(20 + me * 7);
                    a.set(ctx, la as usize, v + 1);
                    ctx.unlock(LockId(lb));
                    ctx.unlock(LockId(la));
                }
                ctx.barrier(BarrierId(0));
                let total: u64 = (0..4).map(|i| a.get(ctx, i)).sum();
                assert_eq!(total, 4 * ctx.nodes() as u64);
            },
        );
    }
}

/// Reads and writes spanning page boundaries split correctly.
#[test]
fn page_spanning_bulk_accesses() {
    for protocol in ProtocolName::ALL {
        let cfg = SvmConfig::new(protocol, 2);
        run(
            &cfg,
            |s| s.alloc_array_pages::<u64>(3000, "span"), // ~3 pages
            |ctx, a| {
                if ctx.node() == 0 {
                    let data: Vec<u64> = (0..3000).map(|i| i as u64 * 3).collect();
                    a.write_from(ctx, 0, &data);
                }
                ctx.barrier(BarrierId(0));
                let mut buf = vec![0u64; 1500];
                a.read_into(ctx, 750, &mut buf); // crosses a page boundary
                for (k, v) in buf.iter().enumerate() {
                    assert_eq!(*v, (750 + k) as u64 * 3);
                }
                ctx.barrier(BarrierId(1));
            },
        );
    }
}

/// Cold reads of pages nobody wrote (initialization data only).
#[test]
fn cold_reads_of_initialized_data() {
    for protocol in ProtocolName::ALL {
        let cfg = SvmConfig::new(protocol, 5);
        let report = run(
            &cfg,
            |s| {
                let a = s.alloc_array_pages::<f64>(5000, "init");
                for i in 0..5000 {
                    s.init(&a, i, (i as f64).sqrt());
                }
                a
            },
            |ctx, a| {
                let me = ctx.node();
                for i in (me..5000).step_by(ctx.nodes()) {
                    assert_eq!(a.get(ctx, i), (i as f64).sqrt());
                }
                ctx.barrier(BarrierId(0));
            },
        );
        assert_eq!(
            report.counters.total(|c| c.diffs_created),
            0,
            "{protocol}: read-only"
        );
    }
}
