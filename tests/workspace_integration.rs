//! Workspace-level integration: exercises the whole stack through the
//! umbrella crate's public API, the way a downstream user would.

use hlrc::apps::{paper_suite, Benchmark};
use hlrc::core::{run, BarrierId, HomePolicy, LockId, ProtocolName, SvmConfig};
use hlrc::machine::{Category, TrafficClass};

#[test]
fn quickstart_program_runs_under_every_protocol() {
    for protocol in ProtocolName::ALL {
        let cfg = SvmConfig::new(protocol, 6);
        let report = run(
            &cfg,
            |s| s.alloc_array::<u64>(64, "data"),
            |ctx, data| {
                let me = ctx.node();
                ctx.lock(LockId(0));
                let v = data.get(ctx, 0);
                data.set(ctx, 0, v + me as u64 + 1);
                ctx.unlock(LockId(0));
                ctx.compute_us(500);
                ctx.barrier(BarrierId(0));
                let total = data.get(ctx, 0);
                assert_eq!(total, (1..=ctx.nodes() as u64).sum::<u64>());
            },
        );
        assert_eq!(report.nodes, 6);
        assert!(report.secs() > 0.0);
    }
}

#[test]
fn suite_has_the_papers_five_workloads() {
    let suite = paper_suite(0.05);
    let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
    assert_eq!(
        names,
        vec!["LU", "SOR", "Water-Nsquared", "Water-Spatial", "Raytrace"]
    );
    for b in &suite {
        assert!(
            b.seq_secs() > 0.0,
            "{} must have a calibrated time",
            b.name()
        );
        assert!(!b.size_label().is_empty());
    }
}

#[test]
fn report_invariants_hold_across_the_stack() {
    let bench = &paper_suite(0.05)[1]; // SOR: quick and chatty
    for protocol in [ProtocolName::Lrc, ProtocolName::Ohlrc] {
        let run = bench.run(&SvmConfig::new(protocol, 8));
        let r = &run.report;
        // Accounting: every node's categories integrate to total time.
        for b in &r.outcome.breakdowns {
            assert_eq!(b.total().as_nanos(), r.outcome.total_time.as_nanos());
        }
        // Barrier counts agree between app structure and protocol.
        let per_node = r.counters.nodes[0].barriers;
        assert!(r.counters.nodes.iter().all(|c| c.barriers == per_node));
        // Traffic totals equal the sum of per-node counters.
        for class in [TrafficClass::Data, TrafficClass::Protocol] {
            let total = r.outcome.traffic.total(class);
            let by_node: u64 = (0..r.nodes)
                .map(|i| {
                    r.outcome
                        .traffic
                        .node(hlrc::machine::NodeId(i as u16), class)
                        .messages
                })
                .sum();
            assert_eq!(total.messages, by_node);
        }
        // A parallel run on 8 nodes must beat one node.
        let one = bench.run(&SvmConfig::new(protocol, 1)).report.secs();
        assert!(r.secs() < one, "{protocol}: 8 nodes slower than 1");
    }
}

#[test]
fn overlapped_protocols_use_the_coprocessor() {
    let bench = &paper_suite(0.05)[1];
    let hlrc = bench.run(&SvmConfig::new(ProtocolName::Hlrc, 8)).report;
    let ohlrc = bench.run(&SvmConfig::new(ProtocolName::Ohlrc, 8)).report;
    let busy = |r: &hlrc::core::RunReport| {
        r.outcome
            .coproc_busy
            .iter()
            .map(|d| d.as_nanos())
            .sum::<u64>()
    };
    assert_eq!(busy(&hlrc), 0, "HLRC must not touch the co-processor");
    assert!(busy(&ohlrc) > 0, "OHLRC must offload to the co-processor");
    assert!(
        ohlrc.secs() <= hlrc.secs() * 1.02,
        "overlap should not hurt"
    );
}

#[test]
fn home_placement_ablation_shows_the_home_effect() {
    // Page-aligned SOR (1024 doubles per row = one page, whole-page bands):
    // the single-writer case where owner homes eliminate diffs entirely.
    let bench: Box<dyn Benchmark> = Box::new(hlrc::apps::sor::Sor {
        rows: 64,
        cols: 1024,
        iters: 4,
        init: hlrc::apps::sor::SorInit::Random,
        verify: false,
    });
    let bench = &bench;
    let mut owner = SvmConfig::new(ProtocolName::Hlrc, 8);
    owner.home_policy = HomePolicy::Explicit;
    let mut rr = SvmConfig::new(ProtocolName::Hlrc, 8);
    rr.home_policy = HomePolicy::RoundRobin;
    let owner_run = bench.run(&owner).report;
    let rr_run = bench.run(&rr).report;
    assert_eq!(owner_run.counters.total(|c| c.diffs_created), 0);
    assert!(rr_run.counters.total(|c| c.diffs_created) > 0);
    assert!(owner_run.secs() < rr_run.secs());
}

#[test]
fn sor_zero_interior_keeps_hlrc_competitive() {
    // The Section 4.8 experiment at test scale: the LRC-favourable extreme
    // must not leave HLRC behind.
    let sor = hlrc::apps::sor::Sor::zero_interior(0.06);
    let lrc = sor.run(&SvmConfig::new(ProtocolName::Lrc, 8)).report.secs();
    let hlrc_t = sor
        .run(&SvmConfig::new(ProtocolName::Hlrc, 8))
        .report
        .secs();
    assert!(hlrc_t <= lrc * 1.1, "HLRC {hlrc_t}s vs LRC {lrc}s");
}

#[test]
fn breakdown_categories_are_meaningful() {
    let bench = &paper_suite(0.05)[2]; // Water-Nsquared: locks + barriers
    let run = bench.run(&SvmConfig::new(ProtocolName::Hlrc, 8)).report;
    let b = run.avg_breakdown();
    assert!(b[Category::Compute].as_nanos() > 0);
    assert!(b[Category::Barrier].as_nanos() > 0);
    assert!(b[Category::Lock].as_nanos() > 0);
    assert_eq!(b[Category::Gc].as_nanos(), 0, "home-based never GCs");
}
