//! Whole-pipeline determinism: the evaluation harness must produce
//! bit-identical numbers on repeated runs — that is what makes the
//! regenerated tables trustworthy.

use hlrc::apps::{paper_suite, Benchmark};
use hlrc::core::{ProtocolName, SvmConfig};

#[test]
fn sweep_cells_are_bit_reproducible() {
    for bench in paper_suite(0.05) {
        for protocol in [ProtocolName::Lrc, ProtocolName::Ohlrc] {
            let cfg = SvmConfig::new(protocol, 8);
            let a = bench.run(&cfg);
            let b = bench.run(&cfg);
            assert_eq!(
                a.report.outcome.total_time,
                b.report.outcome.total_time,
                "{} under {protocol}: simulated time must be exact",
                bench.name()
            );
            assert_eq!(
                a.report.outcome.events_executed,
                b.report.outcome.events_executed
            );
            assert_eq!(
                a.report.outcome.traffic.grand_total(),
                b.report.outcome.traffic.grand_total()
            );
            for (x, y) in a.report.counters.nodes.iter().zip(&b.report.counters.nodes) {
                assert_eq!(x.read_misses, y.read_misses);
                assert_eq!(x.diffs_created, y.diffs_created);
                assert_eq!(x.lock_acquires, y.lock_acquires);
                assert_eq!(x.mem.max_total, y.mem.max_total);
            }
        }
    }
}

#[test]
fn extension_workloads_are_deterministic_too() {
    let fft = hlrc::apps::fft::Fft {
        n: 32,
        verify: true,
    };
    let tsp = hlrc::apps::tsp::Tsp { n: 9, verify: true };
    for protocol in [ProtocolName::Hlrc, ProtocolName::Aurc] {
        let cfg = SvmConfig::new(protocol, 4);
        assert_eq!(fft.run(&cfg).checksum, fft.expected_checksum());
        assert_eq!(tsp.run(&cfg).checksum, tsp.expected_checksum());
        let t1 = fft.run(&cfg).report.outcome.total_time;
        let t2 = fft.run(&cfg).report.outcome.total_time;
        assert_eq!(t1, t2);
    }
}
