#!/usr/bin/env bash
# Tier-1 verification, hermetically: the workspace must build and test
# with networking denied so a reintroduced registry dependency fails fast
# instead of passing on a warm cache.
#
# Usage: verify.sh [--fast]
#   --fast skips the example/bench compiles and the chaos matrix, but
#   always keeps the static analyzer, the crash-recovery smoke, and the
#   consistency-check subset — the cheap gates that catch whole bug
#   classes.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

export CARGO_NET_OFFLINE=true

echo "== formatting (cargo fmt --check)"
cargo fmt --check

echo "== tier-1: release build (offline)"
cargo build --release

echo "== tier-1: tests (offline)"
cargo test -q

echo "== workspace tests (offline)"
cargo test -q --workspace

if [[ "$FAST" -eq 0 ]]; then
  echo "== examples compile (offline)"
  cargo build --examples

  echo "== benches compile (offline)"
  cargo build --benches
fi

echo "== clippy, warnings denied (offline)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== static analysis (svm-analyzer: determinism, unsafe-audit, panic-policy, message-totality, trace-totality, timer-token-disjointness)"
cargo run --release -p svm-bench --bin analyze

echo "== exhaustive exploration gate (svm-explore: bounded matrix, all four protocols, crash on/off)"
cargo run --release -p svm-bench --bin explore -- --fast

if [[ "$FAST" -eq 0 ]]; then
  echo "== fault-injection smoke matrix (mixed 0 / 0.1% / 1% + dup/delay/stall-dominated)"
  cargo run --release -p svm-bench --bin chaos -- --scale 0.03 --nodes 4 --drop 0,0.001,0.01
fi

echo "== crash-recovery smoke matrix (seeded node crashes, graceful recovery)"
cargo run --release -p svm-bench --bin crash -- --scale 0.03 --nodes 4 --seeds 1,2

echo "== consistency check matrix (record -> svm-checker, fast subset)"
cargo run --release -p svm-bench --bin check -- --fast

echo "== serve smoke (DSM-backed services under load; same-seed rerun must be bit-identical)"
cargo run --release -p svm-bench --bin serve -- --fast --out target/serve_fast.json

# The fast matrix includes 64-node cells (paper-scale fan-out smoke), and
# --check gates the deterministic sweep_serial allocation budget plus the
# parallel-vs-serial speedup on multi-core recordings, not just file shape.
echo "== perf smoke (parallel driver must match serial bit-for-bit; 64-node cells)"
cargo run --release -p svm-bench --bin perf -- --fast --out target/BENCH_fast.json
cargo run --release -p svm-bench --bin perf -- --check target/BENCH_fast.json

echo "== recorded perf baseline (BENCH_svm.json) well-formed and within budgets"
cargo run --release -p svm-bench --bin perf -- --check BENCH_svm.json

echo "verify: OK"
